/**
 * @file
 * Tests for the graph substrate: variant canonicalization, graph
 * construction from reference + variants (Fig. 5 layout), topological
 * sorting, linearization with HopBits (Fig. 12) and the hop histogram
 * behind Fig. 13.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/graph/genome_graph.h"
#include "src/graph/graph_builder.h"
#include "src/graph/linearize.h"
#include "src/graph/variants.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace segram::graph
{
namespace
{

TEST(Variants, CanonicalizeSnp)
{
    const Variant v = canonicalize({"chr1", 5, ".", "A", "G"});
    EXPECT_EQ(v.pos, 4u);
    EXPECT_EQ(v.ref, "A");
    EXPECT_EQ(v.alt, "G");
    EXPECT_EQ(v.kind(), VariantKind::Substitution);
}

TEST(Variants, CanonicalizePaddedIndels)
{
    // Deletion of "CT": REF=ACT ALT=A at pos 10 (1-based).
    const Variant del = canonicalize({"chr1", 10, ".", "ACT", "A"});
    EXPECT_EQ(del.pos, 10u);
    EXPECT_EQ(del.ref, "CT");
    EXPECT_EQ(del.alt, "");
    EXPECT_EQ(del.kind(), VariantKind::Deletion);

    // Insertion of "GG" after the padding base.
    const Variant ins = canonicalize({"chr1", 10, ".", "A", "AGG"});
    EXPECT_EQ(ins.pos, 10u);
    EXPECT_EQ(ins.ref, "");
    EXPECT_EQ(ins.alt, "GG");
    EXPECT_EQ(ins.kind(), VariantKind::Insertion);
}

TEST(Variants, CanonicalizeSetDropsOverlapsAndSorts)
{
    const std::vector<io::VcfRecord> records = {
        {"chr1", 20, ".", "ACGT", "A"}, // deletion [20, 23)
        {"chr1", 21, ".", "C", "T"},    // inside the deletion: dropped
        {"chr1", 5, ".", "A", "G"},     // SNP, sorts first
        {"chr2", 7, ".", "A", "T"},     // other chromosome: ignored
        {"chr1", 8, ".", "T", "T"},     // no-op: dropped
    };
    uint64_t dropped = 0;
    const auto kept = canonicalizeSet(records, "chr1", 100, &dropped);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0].pos, 4u);
    EXPECT_EQ(kept[1].pos, 20u);
    EXPECT_EQ(dropped, 2u);
}

TEST(Variants, VcfRoundTripThroughCanonicalForm)
{
    const std::string reference = "ACGTACGTACGT";
    const Variant del{4, "AC", ""};
    const io::VcfRecord record = toVcfRecord(del, "chr1", reference);
    EXPECT_EQ(canonicalize(record), del);
    const Variant ins{4, "", "GGG"};
    EXPECT_EQ(canonicalize(toVcfRecord(ins, "chr1", reference)), ins);
}

TEST(GraphBuilder, ChainWithoutVariants)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {});
    EXPECT_EQ(g.numNodes(), 1u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.totalSeqLen(), 8u);
    EXPECT_EQ(g.nodeSeq(0), "ACGTACGT");
    EXPECT_TRUE(g.isTopologicallySorted());
}

TEST(GraphBuilder, MaxNodeLenSplitsBackbone)
{
    BuildOptions options;
    options.maxNodeLen = 3;
    const GenomeGraph g = buildGraph("ACGTACGT", {}, options);
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.nodeSeq(0), "ACG");
    EXPECT_EQ(g.nodeSeq(2), "GT");
    EXPECT_TRUE(g.isTopologicallySorted());
}

TEST(GraphBuilder, SnpCreatesBranch)
{
    // Fig. 1-style: reference ACGTACGT with a SNP T->G at position 3.
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    // Nodes: ACG | T | G(alt) | ACGT.
    ASSERT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.nodeSeq(0), "ACG");
    EXPECT_EQ(g.nodeSeq(1), "T");
    EXPECT_EQ(g.nodeSeq(2), "G");
    EXPECT_EQ(g.nodeSeq(3), "ACGT");
    EXPECT_TRUE(g.node(2).isAlt);
    // Edges: 0->1, 0->2, 1->3, 2->3.
    EXPECT_EQ(g.numEdges(), 4u);
    const auto succ0 = g.successors(0);
    EXPECT_EQ(std::vector<NodeId>(succ0.begin(), succ0.end()),
              (std::vector<NodeId>{1, 2}));
    EXPECT_TRUE(g.isTopologicallySorted());
}

TEST(GraphBuilder, DeletionCreatesBypassEdge)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{2, "GT", ""}});
    // Nodes: AC | GT | ACGT; edges AC->GT, GT->ACGT, AC->ACGT.
    ASSERT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    const auto succ0 = g.successors(0);
    EXPECT_EQ(std::vector<NodeId>(succ0.begin(), succ0.end()),
              (std::vector<NodeId>{1, 2}));
}

TEST(GraphBuilder, InsertionCreatesOptionalNode)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{4, "", "TTT"}});
    // Nodes: ACGT | TTT(ins) | ACGT; edges 0->1, 1->2, 0->2.
    ASSERT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.nodeSeq(1), "TTT");
    EXPECT_TRUE(g.node(1).isAlt);
    EXPECT_EQ(g.numEdges(), 3u);
}

TEST(GraphBuilder, AdjacentVariantsCrossConnect)
{
    // SNPs at positions 2 and 3: four paths through the middle.
    const GenomeGraph g =
        buildGraph("ACGTAC", {{2, "G", "A"}, {3, "T", "C"}});
    // Nodes: AC | G | A | T | C | AC.
    ASSERT_EQ(g.numNodes(), 6u);
    EXPECT_EQ(g.numEdges(), 8u);
    EXPECT_TRUE(g.isTopologicallySorted());
}

TEST(GraphBuilder, RejectsBadInputs)
{
    EXPECT_THROW(buildGraph("", {}), InputError);
    EXPECT_THROW(buildGraph("ACGT", {{2, "GTX", ""}}), InputError);
    // Unsorted variants.
    EXPECT_THROW(buildGraph("ACGTACGT", {{5, "C", "T"}, {1, "C", "G"}}),
                 InputError);
    // Overlapping variants.
    EXPECT_THROW(buildGraph("ACGTACGT", {{1, "CGT", ""}, {2, "G", "C"}}),
                 InputError);
}

TEST(GenomeGraph, Fig5MemoryLayoutAccounting)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    EXPECT_EQ(g.nodeTableBytes(), g.numNodes() * 32);
    EXPECT_EQ(g.edgeTableBytes(), g.numEdges() * 4);
    EXPECT_EQ(g.charTableBytes(), (g.totalSeqLen() * 2 + 7) / 8);
    EXPECT_EQ(g.totalBytes(),
              g.nodeTableBytes() + g.charTableBytes() + g.edgeTableBytes());
}

TEST(GenomeGraph, LinearOffsetsAndLookup)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    // Offsets: 0 (ACG), 3 (T), 4 (G alt), 5 (ACGT).
    EXPECT_EQ(g.node(0).linearOffset, 0u);
    EXPECT_EQ(g.node(1).linearOffset, 3u);
    EXPECT_EQ(g.node(2).linearOffset, 4u);
    EXPECT_EQ(g.node(3).linearOffset, 5u);
    EXPECT_EQ(g.nodeAtLinear(0), 0u);
    EXPECT_EQ(g.nodeAtLinear(2), 0u);
    EXPECT_EQ(g.nodeAtLinear(3), 1u);
    EXPECT_EQ(g.nodeAtLinear(4), 2u);
    EXPECT_EQ(g.nodeAtLinear(8), 3u);
}

TEST(GenomeGraph, TopologicalSortRelabels)
{
    // Build a deliberately unsorted graph: 0 -> 2, 2 -> 1 is invalid
    // (edge to lower id), so IDs must be relabeled.
    GraphBuilder builder;
    const NodeId a = builder.addNode("AA");
    const NodeId b = builder.addNode("CC");
    const NodeId c = builder.addNode("GG");
    builder.addEdge(a, c);
    builder.addEdge(c, b);
    const GenomeGraph g = std::move(builder).build();
    EXPECT_FALSE(g.isTopologicallySorted());
    const GenomeGraph sorted = g.topologicallySorted();
    EXPECT_TRUE(sorted.isTopologicallySorted());
    EXPECT_EQ(sorted.numNodes(), 3u);
    EXPECT_EQ(sorted.numEdges(), 2u);
    EXPECT_EQ(sorted.nodeSeq(0), "AA");
    EXPECT_EQ(sorted.nodeSeq(1), "GG");
    EXPECT_EQ(sorted.nodeSeq(2), "CC");
}

TEST(GenomeGraph, TopologicalSortRejectsCycles)
{
    GraphBuilder builder;
    const NodeId a = builder.addNode("AA");
    const NodeId b = builder.addNode("CC");
    builder.addEdge(a, b);
    builder.addEdge(b, a);
    const GenomeGraph g = std::move(builder).build();
    EXPECT_THROW(g.topologicallySorted(), InputError);
}

/** Structural equality: sequences and edge lists, node by node. */
void
expectSameStructure(const GenomeGraph &a, const GenomeGraph &b)
{
    ASSERT_EQ(a.numNodes(), b.numNodes());
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (NodeId id = 0; id < a.numNodes(); ++id) {
        EXPECT_EQ(a.nodeSeq(id), b.nodeSeq(id));
        const auto s1 = a.successors(id);
        const auto s2 = b.successors(id);
        EXPECT_EQ(std::vector<NodeId>(s1.begin(), s1.end()),
                  std::vector<NodeId>(s2.begin(), s2.end()));
    }
}

/** Full equality: structure plus the path-space metadata. */
void
expectSameGraph(const GenomeGraph &a, const GenomeGraph &b)
{
    expectSameStructure(a, b);
    for (NodeId id = 0; id < a.numNodes(); ++id) {
        EXPECT_EQ(a.node(id).refPos, b.node(id).refPos) << "node " << id;
        EXPECT_EQ(a.node(id).isAlt, b.node(id).isAlt) << "node " << id;
    }
}

TEST(GenomeGraph, GfaRoundTrip)
{
    const GenomeGraph g =
        buildGraph("ACGTACGT", {{3, "T", "G"}, {6, "", "AA"}});
    const GenomeGraph back = GenomeGraph::fromGfa(g.toGfa());
    expectSameStructure(g, back);
}

TEST(GenomeGraph, GfaRoundTripWithPathPreservesMetadata)
{
    // The full round-trip property: toGfa -> writeGfa -> readGfa ->
    // fromGfa reproduces the original graph including refPos/isAlt,
    // because the P line carries the reference-path coordinates.
    // Substitution, insertion and deletion all participate.
    const GenomeGraph g = buildGraph(
        "ACGTACGTACGTACGT",
        {{3, "T", "G"}, {6, "", "AA"}, {10, "GT", ""}});
    std::ostringstream out;
    io::writeGfa(out, g.toGfa("chr1"));
    std::istringstream in(out.str());
    const GenomeGraph back = GenomeGraph::fromGfa(io::readGfa(in));
    expectSameGraph(g, back);
}

TEST(GenomeGraph, GfaRoundTripLinearChain)
{
    // The sequence-to-sequence special case: a chain graph with no ALT
    // nodes round-trips with every node on the path.
    const GenomeGraph g = buildGraph("ACGTACGTACGTACGT", {}, {4});
    const GenomeGraph back = GenomeGraph::fromGfa(g.toGfa("seq"));
    expectSameGraph(g, back);
    EXPECT_EQ(back.pathLength(), 16u);
}

TEST(GenomeGraph, FromGfaSortsShuffledSegments)
{
    // The regression the unsorted-fromGfa bug caused: building the
    // document in shuffled segment order used to assign node IDs in
    // file order, yielding a graph that violates the node-ID-equals-
    // topological-rank invariant MinSeed and LinearizedGraph rely on.
    const GenomeGraph g =
        buildGraph("ACGTACGTACGT", {{3, "T", "G"}, {7, "", "AA"}});
    io::GfaDocument doc = g.toGfa("chr1");
    io::GfaDocument shuffled = doc;
    std::reverse(shuffled.segments.begin(), shuffled.segments.end());
    std::reverse(shuffled.links.begin(), shuffled.links.end());

    // Pre-fix behaviour, reproduced via the builder: file order is
    // not a topological order, so the invariant would be violated.
    {
        GraphBuilder builder;
        std::map<std::string, NodeId> ids;
        for (const auto &segment : shuffled.segments)
            ids[segment.name] = builder.addNode(segment.seq);
        for (const auto &link : shuffled.links)
            builder.addEdge(ids.at(link.from), ids.at(link.to));
        const GenomeGraph unsorted = std::move(builder).build();
        EXPECT_FALSE(unsorted.isTopologicallySorted());
    }

    // Post-fix: fromGfa canonically sorts, so the shuffled document
    // produces the exact same graph as the in-order one — and both
    // reproduce the FASTA+VCF-built original.
    const GenomeGraph from_sorted = GenomeGraph::fromGfa(doc);
    const GenomeGraph from_shuffled = GenomeGraph::fromGfa(shuffled);
    EXPECT_TRUE(from_shuffled.isTopologicallySorted());
    expectSameGraph(from_sorted, from_shuffled);
    expectSameGraph(g, from_shuffled);
}

TEST(GenomeGraph, FromGfaRejectsCyclicLinks)
{
    io::GfaDocument doc;
    doc.segments = {{"a", "AC"}, {"b", "GG"}, {"c", "TT"}};
    doc.links = {{"a", "b"}, {"b", "c"}, {"c", "a"}};
    try {
        GenomeGraph::fromGfa(doc);
        FAIL() << "cyclic GFA was accepted";
    } catch (const InputError &error) {
        EXPECT_NE(std::string(error.what()).find("cyclic"),
                  std::string::npos);
    }
}

TEST(GenomeGraph, FromGfaRejectsUnlinkedPathSteps)
{
    io::GfaDocument doc;
    doc.segments = {{"a", "AC"}, {"b", "GG"}, {"c", "TT"}};
    doc.links = {{"a", "b"}, {"b", "c"}};
    doc.paths = {{"chr", {"a", "c"}}}; // a -> c has no link
    EXPECT_THROW(GenomeGraph::fromGfa(doc), InputError);
}

TEST(GenomeGraph, FromGfaPathDefinesCoordinates)
{
    // Diamond: ref = AAA -> CC -> TTTT, alt GG parallel to CC.
    io::GfaDocument doc;
    doc.segments = {{"s1", "AAA"}, {"s2", "CC"}, {"alt", "GG"},
                    {"s3", "TTTT"}};
    doc.links = {{"s1", "s2"}, {"s1", "alt"}, {"alt", "s3"},
                 {"s2", "s3"}};
    doc.paths = {{"chr9", {"s1", "s2", "s3"}}};
    const GenomeGraph g = GenomeGraph::fromGfa(doc);
    ASSERT_EQ(g.numNodes(), 4u);
    // Canonical order: s1 first, s3 last; s2/alt tie-break in between.
    EXPECT_EQ(g.nodeSeq(0), "AAA");
    EXPECT_EQ(g.node(0).refPos, 0u);
    EXPECT_FALSE(g.node(0).isAlt);
    // The off-path alt projects to the divergence point (position 3).
    for (NodeId id = 1; id <= 2; ++id) {
        if (g.node(id).isAlt) {
            EXPECT_EQ(g.nodeSeq(id), "GG");
            EXPECT_EQ(g.node(id).refPos, 3u);
        } else {
            EXPECT_EQ(g.nodeSeq(id), "CC");
            EXPECT_EQ(g.node(id).refPos, 3u);
        }
    }
    EXPECT_EQ(g.nodeSeq(3), "TTTT");
    EXPECT_EQ(g.node(3).refPos, 5u);
    EXPECT_FALSE(g.node(3).isAlt);
    // Path space: 9 reference bases vs 11 concatenated.
    EXPECT_EQ(g.pathLength(), 9u);
    EXPECT_EQ(g.totalSeqLen(), 11u);
}

TEST(GenomeGraph, HaplotypeWalksDoNotDefineReferenceCoordinates)
{
    // Diamond with a reference path AND a haplotype walk through the
    // alt branch (the vg/minigraph export shape: P for the reference,
    // W per sample). The walk revisits covered segments, so it must
    // not mark the alt node on-path or shift any refPos.
    io::GfaDocument doc;
    doc.segments = {{"s1", "AAA"}, {"s2", "CC"}, {"alt", "GGGGG"},
                    {"s3", "TTTT"}};
    doc.links = {{"s1", "s2"}, {"s1", "alt"}, {"alt", "s3"},
                 {"s2", "s3"}};
    doc.paths = {{"chr9", {"s1", "s2", "s3"}},
                 {"sample1#1#chr9", {"s1", "alt", "s3"}}};
    const GenomeGraph g = GenomeGraph::fromGfa(doc);
    ASSERT_EQ(g.numNodes(), 4u);
    int alts = 0;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        if (g.nodeSeq(id) == "GGGGG") {
            ++alts;
            EXPECT_TRUE(g.node(id).isAlt);
            // Projected to the divergence point, not to the walk's
            // own cumulative offset.
            EXPECT_EQ(g.node(id).refPos, 3u);
        }
        if (g.nodeSeq(id) == "TTTT") {
            EXPECT_FALSE(g.node(id).isAlt);
            EXPECT_EQ(g.node(id).refPos, 5u);
        }
    }
    EXPECT_EQ(alts, 1);
    // pathLength counts only the reference path (9), never the
    // haplotype branch (which would make it 14).
    EXPECT_EQ(g.pathLength(), 9u);

    // Even a walk covering ONLY the alt branch (no shared backbone
    // segment) is a haplotype walk of the same component, not a
    // second reference path.
    doc.paths = {{"chr9", {"s1", "s2", "s3"}}, {"altwalk", {"alt"}}};
    const GenomeGraph g2 = GenomeGraph::fromGfa(doc);
    EXPECT_EQ(g2.pathLength(), 9u);
    for (NodeId id = 0; id < g2.numNodes(); ++id) {
        if (g2.nodeSeq(id) == "GGGGG") {
            EXPECT_TRUE(g2.node(id).isAlt);
            EXPECT_EQ(g2.node(id).refPos, 3u);
        }
    }
}

TEST(GenomeGraph, PathProjection)
{
    const GenomeGraph g =
        buildGraph("ACGTACGT", {{3, "T", "G"}, {6, "", "AA"}});
    EXPECT_EQ(g.pathLength(), 8u);
    // Every on-path position maps to its reference coordinate; alt
    // positions map to their divergence point.
    for (uint64_t pos = 0; pos < g.totalSeqLen(); ++pos) {
        const NodeId id = g.nodeAtLinear(pos);
        const auto &node = g.node(id);
        if (node.isAlt) {
            EXPECT_EQ(g.pathProject(pos), node.refPos);
        } else {
            EXPECT_EQ(g.pathProject(pos),
                      node.refPos + (pos - node.linearOffset));
        }
    }
    // The projection is monotone non-decreasing along the
    // concatenated coordinate (alt bubbles plateau).
    uint64_t prev = 0;
    for (uint64_t pos = 0; pos < g.totalSeqLen(); ++pos) {
        const uint64_t proj = g.pathProject(pos);
        EXPECT_GE(proj, prev);
        prev = proj;
    }
}

TEST(Linearize, ChainGraph)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {});
    const LinearizedGraph lin = linearizeWhole(g);
    EXPECT_EQ(lin.size(), 8);
    EXPECT_EQ(lin.toString(), "ACGTACGT");
    for (int i = 0; i < 7; ++i) {
        const auto deltas = lin.successorDeltas(i);
        ASSERT_EQ(deltas.size(), 1u);
        EXPECT_EQ(deltas[0], 1);
    }
    EXPECT_TRUE(lin.successorDeltas(7).empty());
    EXPECT_EQ(lin.maxDelta(), 1);
}

TEST(Linearize, SnpProducesHopOfTwo)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    const LinearizedGraph lin = linearizeWhole(g);
    // Layout: A C G | T | G | A C G T  (positions 0-8).
    EXPECT_EQ(lin.toString(), "ACGTGACGT");
    // Position 2 (last of ACG) hops to 3 (T, delta 1) and 4 (alt G,
    // delta 2).
    const auto deltas = lin.successorDeltas(2);
    EXPECT_EQ(std::vector<uint16_t>(deltas.begin(), deltas.end()),
              (std::vector<uint16_t>{1, 2}));
    // T at 3 hops over the alt node to 5 (delta 2); alt G at 4 -> 5.
    EXPECT_EQ(lin.successorDeltas(3)[0], 2);
    EXPECT_EQ(lin.successorDeltas(4)[0], 1);
    EXPECT_EQ(lin.maxDelta(), 2);
    EXPECT_EQ(lin.origin(3).node, 1u);
    EXPECT_EQ(lin.origin(8).node, 3u);
    EXPECT_EQ(lin.origin(8).offset, 3u);
}

TEST(Linearize, RangeClipsNodesAndHops)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    // Full layout ACG T G ACGT; take coordinates [1, 6] = "CGTGAC".
    const LinearizedGraph lin = linearizeRange(g, 1, 6);
    EXPECT_EQ(lin.toString(), "CGTGAC");
    EXPECT_EQ(lin.linearStart(), 1u);
    // Clipped at both ends: last char has no successors.
    EXPECT_TRUE(lin.successorDeltas(5).empty());
    // Hop structure preserved inside: position 1 (G of ACG) -> T, altG.
    const auto deltas = lin.successorDeltas(1);
    EXPECT_EQ(std::vector<uint16_t>(deltas.begin(), deltas.end()),
              (std::vector<uint16_t>{1, 2}));
}

TEST(Linearize, HopLimitDropsLongHops)
{
    // A 6-char deletion creates a hop of length 7.
    const GenomeGraph g = buildGraph("ACGTACGTACGT", {{2, "GTACGT", ""}});
    const LinearizedGraph unlimited = linearizeWhole(g, kUnlimitedHops);
    EXPECT_EQ(unlimited.maxDelta(), 7);
    EXPECT_EQ(unlimited.droppedHops(), 0u);
    const LinearizedGraph limited = linearizeWhole(g, 6);
    EXPECT_EQ(limited.maxDelta(), 1);
    EXPECT_EQ(limited.droppedHops(), 1u);
}

TEST(Linearize, WindowExtraction)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    const LinearizedGraph lin = linearizeWhole(g);
    const LinearizedGraph window = lin.window(2, 4); // "GTGA"
    EXPECT_EQ(window.toString(), "GTGA");
    EXPECT_EQ(window.linearStart(), 2u);
    // Hops leaving the window are clipped.
    for (int i = 0; i < window.size(); ++i) {
        for (const auto delta : window.successorDeltas(i))
            EXPECT_LT(i + delta, window.size());
    }
}

TEST(Linearize, DirectConstructionValidates)
{
    LinearizedGraph lin;
    lin.pushChar('A', {1});
    lin.pushChar('C', {});
    lin.finalize();
    EXPECT_EQ(lin.size(), 2);
    LinearizedGraph bad;
    bad.pushChar('A', {5});
    EXPECT_THROW(bad.finalize(), InputError);
    LinearizedGraph bad_char;
    EXPECT_THROW(bad_char.pushChar('N', {}), InputError);
}

TEST(Linearize, WindowOfWindowComposes)
{
    // Property: window(a).window(b, n) == window(a+b, n).
    Rng rng(41);
    std::string ref;
    for (int i = 0; i < 500; ++i)
        ref.push_back(rng.nextBase());
    std::vector<Variant> variants;
    for (uint64_t pos = 20; pos + 20 < ref.size(); pos += 60) {
        char alt = rng.nextBase();
        while (alt == ref[pos])
            alt = rng.nextBase();
        variants.push_back(
            {pos, std::string(1, ref[pos]), std::string(1, alt)});
    }
    const GenomeGraph g = buildGraph(ref, variants);
    const LinearizedGraph whole = linearizeWhole(g);
    for (int trial = 0; trial < 20; ++trial) {
        const int a = static_cast<int>(rng.nextBelow(whole.size() / 2));
        const int outer_len = static_cast<int>(
            1 + rng.nextBelow(whole.size() - a));
        const auto outer = whole.window(a, outer_len);
        const int b = static_cast<int>(rng.nextBelow(outer_len));
        const int inner_len =
            static_cast<int>(1 + rng.nextBelow(outer_len - b));
        const auto nested = outer.window(b, inner_len);
        const auto direct = whole.window(a + b, inner_len);
        ASSERT_EQ(nested.size(), direct.size());
        EXPECT_EQ(nested.toString(), direct.toString());
        EXPECT_EQ(nested.linearStart(), direct.linearStart());
        for (int pos = 0; pos < nested.size(); ++pos) {
            const auto d1 = nested.successorDeltas(pos);
            const auto d2 = direct.successorDeltas(pos);
            ASSERT_EQ(std::vector<uint16_t>(d1.begin(), d1.end()),
                      std::vector<uint16_t>(d2.begin(), d2.end()))
                << "pos " << pos;
        }
    }
}

TEST(Linearize, ViewMatchesWindowCopy)
{
    // Property: LinearizedGraphView(whole, a, n) agrees with the
    // copying window(a, n) on every observable — the zero-copy slicing
    // alignWindowed relies on.
    Rng rng(47);
    std::string ref;
    for (int i = 0; i < 400; ++i)
        ref.push_back(rng.nextBase());
    std::vector<Variant> variants;
    for (uint64_t pos = 15; pos + 20 < ref.size(); pos += 45) {
        char alt = rng.nextBase();
        while (alt == ref[pos])
            alt = rng.nextBase();
        variants.push_back(
            {pos, std::string(1, ref[pos]), std::string(1, alt)});
    }
    const GenomeGraph g = buildGraph(ref, variants);
    const LinearizedGraph whole = linearizeWhole(g);
    for (int trial = 0; trial < 30; ++trial) {
        const int a = static_cast<int>(rng.nextBelow(whole.size() - 1));
        const int len =
            static_cast<int>(1 + rng.nextBelow(whole.size() - a));
        const LinearizedGraph copy = whole.window(a, len);
        const LinearizedGraphView view(whole, a, len);
        ASSERT_EQ(view.size(), copy.size());
        EXPECT_EQ(view.linearStart(), copy.linearStart());
        for (int pos = 0; pos < copy.size(); ++pos) {
            EXPECT_EQ(view.code(pos), copy.code(pos));
            EXPECT_EQ(view.origin(pos), copy.origin(pos));
            const auto vd = view.successorDeltas(pos);
            const auto cd = copy.successorDeltas(pos);
            ASSERT_EQ(std::vector<uint16_t>(vd.begin(), vd.end()),
                      std::vector<uint16_t>(cd.begin(), cd.end()))
                << "a=" << a << " len=" << len << " pos=" << pos;
        }
        // Sub-views compose like window-of-window.
        const int b = static_cast<int>(rng.nextBelow(len));
        const int inner = static_cast<int>(1 + rng.nextBelow(len - b));
        const LinearizedGraphView nested = view.window(b, inner);
        const LinearizedGraph nested_copy = copy.window(b, inner);
        ASSERT_EQ(nested.size(), nested_copy.size());
        EXPECT_EQ(nested.linearStart(), nested_copy.linearStart());
        for (int pos = 0; pos < nested.size(); ++pos) {
            const auto vd = nested.successorDeltas(pos);
            const auto cd = nested_copy.successorDeltas(pos);
            ASSERT_EQ(std::vector<uint16_t>(vd.begin(), vd.end()),
                      std::vector<uint16_t>(cd.begin(), cd.end()));
        }
    }
}

TEST(Linearize, BufferReuseMatchesReturningOverload)
{
    // linearizeRange into a reused LinearizedGraph must equal a fresh
    // one, for every range and after arbitrary previous contents.
    const GenomeGraph g =
        buildGraph("ACGTACGTACGTACGT", {{3, "T", "G"}, {9, "GT", ""}});
    LinearizedGraph reused;
    for (uint64_t a = 0; a < g.totalSeqLen(); a += 2) {
        const uint64_t b = std::min(a + 9, g.totalSeqLen() - 1);
        const LinearizedGraph fresh = linearizeRange(g, a, b, 6);
        linearizeRange(g, a, b, 6, reused);
        ASSERT_EQ(reused.size(), fresh.size());
        EXPECT_EQ(reused.toString(), fresh.toString());
        EXPECT_EQ(reused.linearStart(), fresh.linearStart());
        EXPECT_EQ(reused.droppedHops(), fresh.droppedHops());
        EXPECT_EQ(reused.maxDelta(), fresh.maxDelta());
        for (int pos = 0; pos < fresh.size(); ++pos) {
            EXPECT_EQ(reused.origin(pos), fresh.origin(pos));
            const auto d1 = reused.successorDeltas(pos);
            const auto d2 = fresh.successorDeltas(pos);
            ASSERT_EQ(std::vector<uint16_t>(d1.begin(), d1.end()),
                      std::vector<uint16_t>(d2.begin(), d2.end()));
        }
    }
}

TEST(GenomeGraph, NodeAtLinearRandomProperty)
{
    Rng rng(43);
    GraphBuilder builder;
    std::vector<uint64_t> starts;
    uint64_t offset = 0;
    for (int i = 0; i < 60; ++i) {
        const auto len = 1 + rng.nextBelow(40);
        std::string seq;
        for (uint64_t c = 0; c < len; ++c)
            seq.push_back(rng.nextBase());
        builder.addNode(seq);
        starts.push_back(offset);
        offset += len;
    }
    const GenomeGraph g = std::move(builder).build();
    for (int trial = 0; trial < 200; ++trial) {
        const uint64_t pos = rng.nextBelow(g.totalSeqLen());
        const NodeId node = g.nodeAtLinear(pos);
        EXPECT_LE(g.node(node).linearOffset, pos);
        EXPECT_LT(pos, g.node(node).linearOffset + g.node(node).seqLen);
    }
}

TEST(Linearize, RegionEqualsWholeWindow)
{
    // linearizeRange(g, a, b) must equal linearizeWhole(g).window(a, ..)
    // because concatenated coordinates map 1:1 to positions.
    const GenomeGraph g =
        buildGraph("ACGTACGTACGTACGT", {{3, "T", "G"}, {9, "GT", ""}});
    const LinearizedGraph whole = linearizeWhole(g);
    for (uint64_t a = 0; a < g.totalSeqLen(); a += 3) {
        const uint64_t b =
            std::min(a + 7, g.totalSeqLen() - 1);
        const auto range = linearizeRange(g, a, b);
        const auto window =
            whole.window(static_cast<int>(a),
                         static_cast<int>(b - a + 1));
        EXPECT_EQ(range.toString(), window.toString());
        for (int pos = 0; pos < range.size(); ++pos) {
            const auto d1 = range.successorDeltas(pos);
            const auto d2 = window.successorDeltas(pos);
            EXPECT_EQ(std::vector<uint16_t>(d1.begin(), d1.end()),
                      std::vector<uint16_t>(d2.begin(), d2.end()))
                << "a=" << a << " pos=" << pos;
        }
    }
}

TEST(HopHistogram, CountsDistances)
{
    const GenomeGraph g = buildGraph("ACGTACGT", {{3, "T", "G"}});
    const auto histogram = hopLengthHistogram(g, 16);
    // Edges: 0->1 (d1), 0->2 (d2), 1->3 (d2), 2->3 (d1).
    EXPECT_EQ(histogram[1], 2u);
    EXPECT_EQ(histogram[2], 2u);
    EXPECT_DOUBLE_EQ(hopCoverage(histogram, 1), 0.5);
    EXPECT_DOUBLE_EQ(hopCoverage(histogram, 2), 1.0);
}

TEST(HopHistogram, SnpsAndSmallIndelsStayWithinPaperLimit)
{
    // Random small-variant graph: hop limit 12 must cover >99% of hops
    // (the Fig. 13 claim) because variants are SNPs and small indels.
    Rng rng(17);
    std::string ref;
    for (int i = 0; i < 20000; ++i)
        ref.push_back(rng.nextBase());
    std::vector<Variant> variants;
    for (uint64_t pos = 50; pos + 20 < ref.size();
         pos += 100 + rng.nextBelow(100)) {
        const double which = rng.nextDouble();
        if (which < 0.9) {
            char alt = rng.nextBase();
            while (alt == ref[pos])
                alt = rng.nextBase();
            variants.push_back({pos, std::string(1, ref[pos]),
                                std::string(1, alt)});
        } else if (which < 0.95) {
            variants.push_back({pos, ref.substr(pos, 3), ""});
        } else {
            variants.push_back({pos, "", "TTT"});
        }
    }
    const GenomeGraph g = buildGraph(ref, variants);
    const auto histogram = hopLengthHistogram(g);
    EXPECT_GT(hopCoverage(histogram, kDefaultHopLimit), 0.99);
}

} // namespace
} // namespace segram::graph
