/**
 * @file
 * Scalar-vs-SIMD equivalence tests for the bitops kernel layer.
 *
 * Every primitive in KernelOps is pure integer bit manipulation, so
 * every backend must agree bit-for-bit on every input — this is the
 * property that lets the mapper swap kernels without changing a single
 * PAF byte. The fuzz loops sweep widths 1..512 bits (covering every
 * word-boundary edge and every vector-tail length), random payloads,
 * the documented dst==src aliasing cases, and the fused ops against
 * their composed definitions. The suite runs under the sanitizer CI
 * job, so out-of-bounds vector tails or unaligned-load UB fail loudly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/bitops_simd.h"
#include "src/util/bitvector.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace
{

using namespace segram;

/** Widths that exercise word boundaries and vector-block tails. */
const std::vector<int> kEdgeWidths = {1,   2,   63,  64,  65,  127,
                                      128, 129, 191, 192, 255, 256,
                                      257, 319, 383, 447, 511, 512};

std::vector<uint64_t>
randomWords(Rng &rng, int nwords)
{
    std::vector<uint64_t> words(static_cast<size_t>(nwords));
    for (auto &word : words)
        word = rng.nextU64();
    return words;
}

/** All widths 1..512 plus the explicit edge list (deduplicated by the
 *  sweep being a superset — the list documents intent). */
std::vector<int>
allWidths()
{
    std::vector<int> widths;
    for (int w = 1; w <= 512; ++w)
        widths.push_back(w);
    return widths;
}

struct Backend
{
    const bitops::KernelOps *ops;
    const char *name;
};

/** Scalar always; the SIMD table when this build + CPU provide one. */
std::vector<Backend>
backends()
{
    std::vector<Backend> list = {{&bitops::scalarKernels(), "scalar"}};
    if (const bitops::KernelOps *simd = bitops::simdKernels())
        list.push_back(
            {simd, bitops::backendName(bitops::simdBackend())});
    return list;
}

TEST(SimdKernels, DispatchIsConsistent)
{
    // kernels() must hand back either the scalar table or the SIMD
    // table, and activeBackend() must describe the same choice.
    const bitops::KernelOps &active = bitops::kernels();
    if (bitops::activeBackend() == bitops::KernelBackend::Scalar) {
        EXPECT_EQ(&active, &bitops::scalarKernels());
        EXPECT_STREQ(bitops::activeBackendName(), "scalar");
    } else {
        EXPECT_EQ(&active, bitops::simdKernels());
        EXPECT_EQ(bitops::activeBackend(), bitops::simdBackend());
    }
}

TEST(SimdKernels, AllPrimitivesMatchScalarOnAllWidths)
{
    Rng rng(0x5eeded);
    const auto &scalar = bitops::scalarKernels();
    for (const Backend &backend : backends()) {
        for (const int width : allWidths()) {
            const int nwords = bitops::wordsForWidth(width);
            const auto src = randomWords(rng, nwords);
            const auto mask = randomWords(rng, nwords);
            const auto init = randomWords(rng, nwords);

            const auto check = [&](const char *op, auto &&run) {
                std::vector<uint64_t> want = init;
                std::vector<uint64_t> got = init;
                run(scalar, want.data());
                run(*backend.ops, got.data());
                ASSERT_EQ(want, got)
                    << op << " diverged on backend " << backend.name
                    << " at width " << width;
            };
            check("shiftLeftOne",
                  [&](const bitops::KernelOps &k, uint64_t *dst) {
                      k.shiftLeftOne(dst, src.data(), nwords);
                  });
            check("andInPlace",
                  [&](const bitops::KernelOps &k, uint64_t *dst) {
                      k.andInPlace(dst, src.data(), nwords);
                  });
            check("shiftLeftOneOr",
                  [&](const bitops::KernelOps &k, uint64_t *dst) {
                      k.shiftLeftOneOr(dst, src.data(), mask.data(),
                                       nwords);
                  });
            check("shiftLeftOneOrAnd",
                  [&](const bitops::KernelOps &k, uint64_t *dst) {
                      k.shiftLeftOneOrAnd(dst, src.data(), mask.data(),
                                          nwords);
                  });
            check("andShiftAnd",
                  [&](const bitops::KernelOps &k, uint64_t *dst) {
                      k.andShiftAnd(dst, src.data(), nwords);
                  });
            check("fillOnes",
                  [&](const bitops::KernelOps &k, uint64_t *dst) {
                      k.fillOnes(dst, nwords);
                  });
        }
    }
}

TEST(SimdKernels, FusedCellMatchesScalarOnAllWidths)
{
    Rng rng(0xce11);
    const auto &scalar = bitops::scalarKernels();
    for (const Backend &backend : backends()) {
        for (const int width : allWidths()) {
            const int nwords = bitops::wordsForWidth(width);
            const auto ins = randomWords(rng, nwords);
            const auto ds = randomWords(rng, nwords);
            const auto match = randomWords(rng, nwords);
            const auto pm = randomWords(rng, nwords);
            std::vector<uint64_t> want(static_cast<size_t>(nwords));
            std::vector<uint64_t> got(static_cast<size_t>(nwords));
            scalar.fusedCell(want.data(), ins.data(), ds.data(),
                             match.data(), pm.data(), nwords);
            backend.ops->fusedCell(got.data(), ins.data(), ds.data(),
                                   match.data(), pm.data(), nwords);
            ASSERT_EQ(want, got) << "fusedCell diverged on backend "
                                 << backend.name << " at width "
                                 << width;
        }
    }
}

TEST(SimdKernels, FusedOpsMatchComposedDefinitions)
{
    // The fused ops are defined in terms of the simple primitives;
    // verify the definitions hold (on the scalar table — the previous
    // tests extend the property to every backend transitively).
    Rng rng(0xf05ed);
    const auto &k = bitops::scalarKernels();
    for (const int width : kEdgeWidths) {
        const int nwords = bitops::wordsForWidth(width);
        const auto src = randomWords(rng, nwords);
        const auto mask = randomWords(rng, nwords);
        const auto init = randomWords(rng, nwords);
        std::vector<uint64_t> tmp(static_cast<size_t>(nwords));

        // shiftLeftOneOrAnd == shiftLeftOneOr into tmp, then AND.
        std::vector<uint64_t> composed = init;
        k.shiftLeftOneOr(tmp.data(), src.data(), mask.data(), nwords);
        k.andInPlace(composed.data(), tmp.data(), nwords);
        std::vector<uint64_t> fused = init;
        k.shiftLeftOneOrAnd(fused.data(), src.data(), mask.data(),
                            nwords);
        EXPECT_EQ(composed, fused) << "shiftLeftOneOrAnd, width "
                                   << width;

        // andShiftAnd == AND src, then AND (src << 1).
        composed = init;
        k.andInPlace(composed.data(), src.data(), nwords);
        k.shiftLeftOne(tmp.data(), src.data(), nwords);
        k.andInPlace(composed.data(), tmp.data(), nwords);
        fused = init;
        k.andShiftAnd(fused.data(), src.data(), nwords);
        EXPECT_EQ(composed, fused) << "andShiftAnd, width " << width;

        // fusedCell == I & D & S & M built from the simple ops.
        const auto ds = randomWords(rng, nwords);
        const auto match = randomWords(rng, nwords);
        k.shiftLeftOne(composed.data(), init.data(), nwords); // I
        k.andInPlace(composed.data(), ds.data(), nwords);     // & D
        k.andShiftAnd(composed.data(), ds.data(), nwords);    // & S (&D)
        k.shiftLeftOneOrAnd(composed.data(), match.data(), mask.data(),
                            nwords);                          // & M
        fused.resize(static_cast<size_t>(nwords));
        k.fusedCell(fused.data(), init.data(), ds.data(), match.data(),
                    mask.data(), nwords);
        EXPECT_EQ(composed, fused) << "fusedCell, width " << width;
    }
}

TEST(SimdKernels, FixedWidthTemplatesMatchDispatchedTable)
{
    Rng rng(0xf1f1);
    const auto &k = bitops::scalarKernels();
    const auto run = [&](auto nwords_tag) {
        constexpr int NW = decltype(nwords_tag)::value;
        const auto src = randomWords(rng, NW);
        const auto mask = randomWords(rng, NW);
        const auto ds = randomWords(rng, NW);
        const auto match = randomWords(rng, NW);
        const auto init = randomWords(rng, NW);

        std::vector<uint64_t> want = init;
        std::vector<uint64_t> got = init;
        k.shiftLeftOne(want.data(), src.data(), NW);
        bitops::fixed::shiftLeftOne<NW>(got.data(), src.data());
        EXPECT_EQ(want, got) << "fixed::shiftLeftOne<" << NW << ">";

        want = init;
        got = init;
        k.shiftLeftOneOr(want.data(), src.data(), mask.data(), NW);
        bitops::fixed::shiftLeftOneOr<NW>(got.data(), src.data(),
                                          mask.data());
        EXPECT_EQ(want, got) << "fixed::shiftLeftOneOr<" << NW << ">";

        want = init;
        got = init;
        k.shiftLeftOneOrAnd(want.data(), src.data(), mask.data(), NW);
        bitops::fixed::shiftLeftOneOrAnd<NW>(got.data(), src.data(),
                                             mask.data());
        EXPECT_EQ(want, got) << "fixed::shiftLeftOneOrAnd<" << NW
                             << ">";

        want = init;
        got = init;
        k.andShiftAnd(want.data(), src.data(), NW);
        bitops::fixed::andShiftAnd<NW>(got.data(), src.data());
        EXPECT_EQ(want, got) << "fixed::andShiftAnd<" << NW << ">";

        k.fusedCell(want.data(), init.data(), ds.data(), match.data(),
                    mask.data(), NW);
        bitops::fixed::fusedCell<NW>(got.data(), init.data(), ds.data(),
                                     match.data(), mask.data());
        EXPECT_EQ(want, got) << "fixed::fusedCell<" << NW << ">";
    };
    run(std::integral_constant<int, 1>{});
    run(std::integral_constant<int, 2>{});
    run(std::integral_constant<int, 3>{});
    run(std::integral_constant<int, 8>{});
}

TEST(SimdKernels, ShiftingOpsAllowFullDstSrcAliasing)
{
    // The documented contract: dst == src (full overlap) is legal for
    // the in-place and shifting ops on every backend.
    Rng rng(0xa11a5);
    for (const Backend &backend : backends()) {
        for (const int width : kEdgeWidths) {
            const int nwords = bitops::wordsForWidth(width);
            const auto src = randomWords(rng, nwords);
            const auto mask = randomWords(rng, nwords);

            std::vector<uint64_t> want(static_cast<size_t>(nwords));
            bitops::scalarKernels().shiftLeftOne(want.data(), src.data(),
                                                 nwords);
            std::vector<uint64_t> aliased = src;
            backend.ops->shiftLeftOne(aliased.data(), aliased.data(),
                                      nwords);
            ASSERT_EQ(want, aliased)
                << "aliased shiftLeftOne, backend " << backend.name
                << ", width " << width;

            bitops::scalarKernels().shiftLeftOneOr(
                want.data(), src.data(), mask.data(), nwords);
            aliased = src;
            backend.ops->shiftLeftOneOr(aliased.data(), aliased.data(),
                                        mask.data(), nwords);
            ASSERT_EQ(want, aliased)
                << "aliased shiftLeftOneOr, backend " << backend.name
                << ", width " << width;

            std::vector<uint64_t> expect = src;
            bitops::scalarKernels().andShiftAnd(expect.data(),
                                                src.data(), nwords);
            aliased = src;
            backend.ops->andShiftAnd(aliased.data(), aliased.data(),
                                     nwords);
            ASSERT_EQ(expect, aliased)
                << "aliased andShiftAnd, backend " << backend.name
                << ", width " << width;
        }
    }
}

/** Extracts lane @p w from a lane-major block of @p nwords groups. */
std::vector<uint64_t>
deinterleave(const std::vector<uint64_t> &lane_major, int nwords, int w)
{
    std::vector<uint64_t> out(static_cast<size_t>(nwords));
    for (int j = 0; j < nwords; ++j)
        out[static_cast<size_t>(j)] =
            lane_major[static_cast<size_t>(j) * bitops::kBatchLanes + w];
    return out;
}

TEST(BatchKernels, BatchOpsMatchScalarOnAllPerLaneWidths)
{
    Rng rng(0xba7c4);
    const auto &scalar = bitops::scalarKernels();
    constexpr int kLanes = bitops::kBatchLanes;
    for (const Backend &backend : backends()) {
        for (int nwords = 1; nwords <= 8; ++nwords) {
            const int total = nwords * kLanes;
            const auto ins = randomWords(rng, total);
            const auto ds = randomWords(rng, total);
            const auto match = randomWords(rng, total);
            const auto pm = randomWords(rng, total);

            std::vector<uint64_t> want(static_cast<size_t>(total));
            std::vector<uint64_t> got(static_cast<size_t>(total));
            scalar.batchShiftLeftOneOr(want.data(), ins.data(),
                                       pm.data(), nwords);
            backend.ops->batchShiftLeftOneOr(got.data(), ins.data(),
                                             pm.data(), nwords);
            ASSERT_EQ(want, got) << "batchShiftLeftOneOr, backend "
                                 << backend.name << ", nwords "
                                 << nwords;

            scalar.batchFusedCell(want.data(), ins.data(), ds.data(),
                                  match.data(), pm.data(), nwords);
            backend.ops->batchFusedCell(got.data(), ins.data(),
                                        ds.data(), match.data(),
                                        pm.data(), nwords);
            ASSERT_EQ(want, got) << "batchFusedCell, backend "
                                 << backend.name << ", nwords "
                                 << nwords;
        }
    }
}

TEST(BatchKernels, BatchColumnMatchesScalarAcrossLevels)
{
    Rng rng(0xc01a);
    const auto &scalar = bitops::scalarKernels();
    constexpr int kLanes = bitops::kBatchLanes;
    // levels = k+1; 2 and 33 are the mapping path's common cases and a
    // deep column, 1 is the no-fusedCell degenerate.
    for (const Backend &backend : backends()) {
        for (int nwords = 1; nwords <= 8; ++nwords) {
            for (const int levels : {1, 2, 5, 33}) {
                const int L = nwords * kLanes;
                const auto prev = randomWords(rng, levels * L);
                const auto pm = randomWords(rng, L);
                std::vector<uint64_t> want(
                    static_cast<size_t>(levels * L));
                std::vector<uint64_t> got(
                    static_cast<size_t>(levels * L));
                scalar.batchColumn(want.data(), prev.data(), pm.data(),
                                   nwords, levels);
                backend.ops->batchColumn(got.data(), prev.data(),
                                         pm.data(), nwords, levels);
                ASSERT_EQ(want, got)
                    << "batchColumn, backend " << backend.name
                    << ", nwords " << nwords << ", levels " << levels;
            }
        }
    }
}

TEST(BatchKernels, BatchOpsEqualDeinterleavedPerWindowOps)
{
    // The lane-independence contract: each lane of a batched sweep
    // equals the single-window scalar op run on that lane's extracted
    // vectors — carries never cross lanes.
    Rng rng(0xde1a7e);
    const auto &scalar = bitops::scalarKernels();
    constexpr int kLanes = bitops::kBatchLanes;
    for (const Backend &backend : backends()) {
        for (int nwords = 1; nwords <= 8; ++nwords) {
            const int total = nwords * kLanes;
            const auto ins = randomWords(rng, total);
            const auto ds = randomWords(rng, total);
            const auto match = randomWords(rng, total);
            const auto pm = randomWords(rng, total);

            std::vector<uint64_t> shifted(static_cast<size_t>(total));
            std::vector<uint64_t> fused(static_cast<size_t>(total));
            backend.ops->batchShiftLeftOneOr(shifted.data(), ins.data(),
                                             pm.data(), nwords);
            backend.ops->batchFusedCell(fused.data(), ins.data(),
                                        ds.data(), match.data(),
                                        pm.data(), nwords);
            for (int w = 0; w < kLanes; ++w) {
                const auto lins = deinterleave(ins, nwords, w);
                const auto lds = deinterleave(ds, nwords, w);
                const auto lmatch = deinterleave(match, nwords, w);
                const auto lpm = deinterleave(pm, nwords, w);
                std::vector<uint64_t> want(
                    static_cast<size_t>(nwords));
                scalar.shiftLeftOneOr(want.data(), lins.data(),
                                      lpm.data(), nwords);
                ASSERT_EQ(want, deinterleave(shifted, nwords, w))
                    << "batchShiftLeftOneOr lane " << w << ", backend "
                    << backend.name << ", nwords " << nwords;
                scalar.fusedCell(want.data(), lins.data(), lds.data(),
                                 lmatch.data(), lpm.data(), nwords);
                ASSERT_EQ(want, deinterleave(fused, nwords, w))
                    << "batchFusedCell lane " << w << ", backend "
                    << backend.name << ", nwords " << nwords;
            }
        }
    }
}

TEST(BatchKernels, BatchShiftLeftOneOrAllowsFullDstSrcAliasing)
{
    // The stream sweep writes each column over its own source row when
    // the scheduler reuses a retired lane's storage; the documented
    // contract is full dst == src overlap, same as shiftLeftOneOr.
    Rng rng(0xa11b);
    constexpr int kLanes = bitops::kBatchLanes;
    for (const Backend &backend : backends()) {
        for (int nwords = 1; nwords <= 8; ++nwords) {
            const int total = nwords * kLanes;
            const auto src = randomWords(rng, total);
            const auto mask = randomWords(rng, total);
            std::vector<uint64_t> want(static_cast<size_t>(total));
            bitops::scalarKernels().batchShiftLeftOneOr(
                want.data(), src.data(), mask.data(), nwords);
            std::vector<uint64_t> aliased = src;
            backend.ops->batchShiftLeftOneOr(aliased.data(),
                                             aliased.data(),
                                             mask.data(), nwords);
            ASSERT_EQ(want, aliased)
                << "aliased batchShiftLeftOneOr, backend "
                << backend.name << ", nwords " << nwords;
        }
    }
}

TEST(BatchKernels, BatchColumnMatchesComposedDefinition)
{
    // batchColumn is defined as batchShiftLeftOneOr + a batchFusedCell
    // per level with register-chained inputs; verify the definition on
    // every backend (the fusion must not change a bit).
    Rng rng(0xc0de);
    constexpr int kLanes = bitops::kBatchLanes;
    for (const Backend &backend : backends()) {
        for (int nwords = 1; nwords <= 8; ++nwords) {
            for (const int levels : {1, 2, 33}) {
                const int L = nwords * kLanes;
                const auto prev = randomWords(rng, levels * L);
                const auto pm = randomWords(rng, L);
                std::vector<uint64_t> composed(
                    static_cast<size_t>(levels * L));
                backend.ops->batchShiftLeftOneOr(composed.data(),
                                                 prev.data(), pm.data(),
                                                 nwords);
                for (int d = 1; d < levels; ++d)
                    backend.ops->batchFusedCell(
                        composed.data() + d * L,
                        composed.data() + (d - 1) * L,
                        prev.data() + (d - 1) * L, prev.data() + d * L,
                        pm.data(), nwords);
                std::vector<uint64_t> fused(
                    static_cast<size_t>(levels * L));
                backend.ops->batchColumn(fused.data(), prev.data(),
                                         pm.data(), nwords, levels);
                ASSERT_EQ(composed, fused)
                    << "batchColumn vs composed, backend "
                    << backend.name << ", nwords " << nwords
                    << ", levels " << levels;
            }
        }
    }
}

TEST(WordSlab, CarvesAreCacheLineAligned)
{
    bitops::WordSlab slab;
    // Unaligned-tail word counts on purpose: every take() must still
    // start on a 64-byte boundary regardless of the previous carve.
    for (const size_t carve : {1u, 3u, 7u, 9u, 16u, 17u}) {
        const size_t total = 4 * bitops::WordSlab::padded(carve);
        slab.reset(total);
        for (int i = 0; i < 4; ++i) {
            uint64_t *p = slab.take(carve);
            EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                          bitops::WordSlab::kAlignBytes,
                      0u)
                << "carve " << carve << ", take " << i;
            // The carve must be writable over its full padded extent.
            for (size_t w = 0; w < carve; ++w)
                p[w] = 0;
        }
    }
}

TEST(WordSlab, PaddedRoundsToCarveUnits)
{
    using bitops::WordSlab;
    EXPECT_EQ(WordSlab::padded(0), 0u);
    EXPECT_EQ(WordSlab::padded(1), WordSlab::kAlignWords);
    EXPECT_EQ(WordSlab::padded(WordSlab::kAlignWords),
              WordSlab::kAlignWords);
    EXPECT_EQ(WordSlab::padded(WordSlab::kAlignWords + 1),
              2 * WordSlab::kAlignWords);
}

TEST(WordSlab, WarmResetKeepsCapacity)
{
    bitops::WordSlab slab;
    slab.reset(256);
    const size_t capacity = slab.capacityWords();
    slab.reset(128);
    EXPECT_EQ(slab.capacityWords(), capacity);
    slab.reset(256);
    EXPECT_EQ(slab.capacityWords(), capacity);
}

TEST(WordSlab, TakeBeyondResetCapacityThrows)
{
    using bitops::WordSlab;
    WordSlab slab;
    slab.reset(2 * WordSlab::kAlignWords);
    // Carves within the reset capacity succeed...
    EXPECT_NE(slab.take(WordSlab::kAlignWords), nullptr);
    EXPECT_NE(slab.take(WordSlab::kAlignWords), nullptr);
    // ...and the first word past it is diagnosed, not written.
    EXPECT_THROW(slab.take(1), InputError);

    // A single over-large carve on a fresh reset is also caught, even
    // when earlier resets grew the backing vector beyond the request.
    slab.reset(WordSlab::kAlignWords);
    EXPECT_THROW(slab.take(2 * WordSlab::kAlignWords), InputError);
}

TEST(WordSlab, PaddedOverflowThrows)
{
    using bitops::WordSlab;
    // A negative extent cast to size_t upstream would wrap padded()'s
    // rounding; the guard turns that into a diagnosable error.
    EXPECT_THROW(WordSlab::padded(std::numeric_limits<size_t>::max()),
                 InputError);
    EXPECT_THROW(
        WordSlab::padded(std::numeric_limits<size_t>::max() -
                         (WordSlab::kAlignWords - 2)),
        InputError);
}

} // namespace
