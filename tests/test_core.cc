/**
 * @file
 * Tests for the SegramMapper pipeline API: configuration validation,
 * mapping behaviour on linear and graph references, early exit and
 * region capping, and CIGAR consistency.
 */

#include <gtest/gtest.h>

#include "src/core/segram.h"
#include "src/graph/graph_builder.h"
#include "src/sim/dataset.h"
#include "src/util/check.h"
#include "src/util/dna.h"
#include "src/util/rng.h"

namespace segram::core
{
namespace
{

sim::DatasetConfig
smallConfig(uint64_t seed)
{
    sim::DatasetConfig config;
    config.genome.length = 40'000;
    config.genome.repeatFraction = 0.0;
    config.index.sketch = {13, 8};
    config.index.bucketBits = 13;
    config.seed = seed;
    return config;
}

TEST(SegramMapper, MapsExactBackboneReads)
{
    const auto dataset = sim::makeDataset(smallConfig(61));
    SegramConfig config;
    config.minseed.errorRate = 0.05;
    const SegramMapper mapper(dataset.graph, dataset.index, config);
    Rng rng(62);
    for (int trial = 0; trial < 10; ++trial) {
        const uint64_t start =
            rng.nextBelow(dataset.donor.seq().size() - 400);
        const std::string read = dataset.donor.seq().substr(start, 300);
        PipelineStats stats;
        const auto result = mapper.mapRead(read, &stats);
        ASSERT_TRUE(result.mapped) << "trial " << trial;
        EXPECT_EQ(result.editDistance, 0) << "trial " << trial;
        EXPECT_EQ(result.cigar.readLength(), read.size());
        EXPECT_GT(stats.regionsAligned, 0u);
        // Position: within a small tolerance of the truth.
        const uint64_t truth = dataset.donor.toLinear(start);
        const uint64_t delta = result.linearStart > truth
                                   ? result.linearStart - truth
                                   : truth - result.linearStart;
        EXPECT_LE(delta, 16u) << "trial " << trial;
    }
}

TEST(SegramMapper, EmptyReadRejected)
{
    const auto dataset = sim::makeDataset(smallConfig(63));
    const SegramMapper mapper(dataset.graph, dataset.index);
    EXPECT_THROW(mapper.mapRead(""), InputError);
}

TEST(SegramMapper, UnrelatedReadDoesNotMap)
{
    const auto dataset = sim::makeDataset(smallConfig(64));
    const SegramMapper mapper(dataset.graph, dataset.index);
    // A random read shares no (w+k-1)-exact stretch with the genome,
    // with overwhelming probability, so seeding finds nothing.
    Rng rng(65);
    std::string read;
    for (int i = 0; i < 200; ++i)
        read.push_back(rng.nextBase());
    PipelineStats stats;
    const auto result = mapper.mapRead(read, &stats);
    EXPECT_FALSE(result.mapped);
    EXPECT_EQ(stats.readsMapped, 0u);
}

TEST(SegramMapper, MaxRegionsCapsWork)
{
    const auto dataset = sim::makeDataset(smallConfig(66));
    SegramConfig capped;
    capped.maxRegions = 1;
    const SegramMapper mapper(dataset.graph, dataset.index, capped);
    const std::string read = dataset.donor.seq().substr(1'000, 300);
    const auto result = mapper.mapRead(read);
    EXPECT_LE(result.regionsTried, 1u);
}

TEST(SegramMapper, EarlyExitStopsEarly)
{
    const auto dataset = sim::makeDataset(smallConfig(67));
    SegramConfig eager;
    eager.earlyExitFraction = 1.0;
    const SegramMapper eager_mapper(dataset.graph, dataset.index, eager);
    SegramConfig exhaustive;
    const SegramMapper full_mapper(dataset.graph, dataset.index,
                                   exhaustive);
    const std::string read = dataset.donor.seq().substr(5'000, 300);
    const auto eager_result = eager_mapper.mapRead(read);
    const auto full_result = full_mapper.mapRead(read);
    ASSERT_TRUE(eager_result.mapped);
    ASSERT_TRUE(full_result.mapped);
    EXPECT_LE(eager_result.regionsTried, full_result.regionsTried);
    EXPECT_EQ(eager_result.editDistance, full_result.editDistance);
}

TEST(SegramMapper, S2SModeOnLinearGraph)
{
    // The universality claim: the same pipeline maps against a chain
    // graph (sequence-to-sequence mapping).
    auto config = smallConfig(68);
    const auto dataset = sim::makeLinearDataset(config);
    const SegramMapper mapper(dataset.graph, dataset.index);
    Rng rng(69);
    for (int trial = 0; trial < 5; ++trial) {
        const uint64_t start =
            rng.nextBelow(dataset.reference.size() - 400);
        const std::string read = dataset.reference.substr(start, 300);
        const auto result = mapper.mapRead(read);
        ASSERT_TRUE(result.mapped);
        EXPECT_EQ(result.editDistance, 0);
        EXPECT_EQ(result.linearStart, start);
    }
}

TEST(SegramMapper, AltAlleleReadsAlignBetterOnGraph)
{
    // Reads carrying variants: the graph mapper finds fewer edits than
    // a linear mapping of the same reads would (reference bias).
    auto dataset_config = smallConfig(70);
    dataset_config.variants.meanSpacing = 150.0;
    const auto dataset = sim::makeDataset(dataset_config);
    const SegramMapper graph_mapper(dataset.graph, dataset.index);

    const auto linear = sim::makeLinearDataset(smallConfig(70));
    const SegramMapper linear_mapper(linear.graph, linear.index);

    Rng rng(71);
    uint64_t graph_edits = 0;
    uint64_t linear_edits = 0;
    int mapped_both = 0;
    for (int trial = 0; trial < 12; ++trial) {
        const uint64_t start =
            rng.nextBelow(dataset.donor.seq().size() - 400);
        const std::string read = dataset.donor.seq().substr(start, 300);
        const auto on_graph = graph_mapper.mapRead(read);
        const auto on_linear = linear_mapper.mapRead(read);
        if (on_graph.mapped && on_linear.mapped) {
            ++mapped_both;
            graph_edits += on_graph.editDistance;
            linear_edits += on_linear.editDistance;
        }
    }
    ASSERT_GT(mapped_both, 5);
    EXPECT_LT(graph_edits, linear_edits);
}

TEST(SegramMapper, ReverseComplementMapping)
{
    const auto dataset = sim::makeDataset(smallConfig(72));
    SegramConfig config;
    config.tryReverseComplement = true;
    config.earlyExitFraction = 1.0;
    const SegramMapper mapper(dataset.graph, dataset.index, config);
    Rng rng(73);
    for (int trial = 0; trial < 5; ++trial) {
        const uint64_t start =
            rng.nextBelow(dataset.donor.seq().size() - 400);
        const std::string fwd = dataset.donor.seq().substr(start, 300);
        const std::string rc = reverseComplement(fwd);

        const auto fwd_result = mapper.mapRead(fwd);
        const auto rc_result = mapper.mapRead(rc);
        ASSERT_TRUE(fwd_result.mapped);
        ASSERT_TRUE(rc_result.mapped);
        EXPECT_FALSE(fwd_result.reverseComplemented);
        EXPECT_TRUE(rc_result.reverseComplemented);
        EXPECT_EQ(fwd_result.editDistance, 0);
        EXPECT_EQ(rc_result.editDistance, 0);
        EXPECT_EQ(fwd_result.linearStart, rc_result.linearStart);
    }
    // Without the flag, reverse-complement reads do not map.
    SegramConfig fwd_only;
    const SegramMapper strict(dataset.graph, dataset.index, fwd_only);
    const std::string rc = reverseComplement(
        dataset.donor.seq().substr(9'000, 300));
    EXPECT_FALSE(strict.mapRead(rc).mapped);
}

TEST(SegramMapper, ChainFilterKeepsAccuracyWithFewerRegions)
{
    const auto dataset = sim::makeDataset(smallConfig(74));
    SegramConfig plain;
    SegramConfig filtered = plain;
    filtered.enableChainFilter = true;
    filtered.maxChains = 3;
    const SegramMapper plain_mapper(dataset.graph, dataset.index, plain);
    const SegramMapper filtered_mapper(dataset.graph, dataset.index,
                                       filtered);
    Rng rng(75);
    for (int trial = 0; trial < 6; ++trial) {
        const uint64_t start =
            rng.nextBelow(dataset.donor.seq().size() - 700);
        const std::string read = dataset.donor.seq().substr(start, 500);
        PipelineStats plain_stats;
        PipelineStats filtered_stats;
        const auto a = plain_mapper.mapRead(read, &plain_stats);
        const auto b = filtered_mapper.mapRead(read, &filtered_stats);
        ASSERT_TRUE(a.mapped);
        ASSERT_TRUE(b.mapped);
        EXPECT_EQ(a.editDistance, 0);
        EXPECT_EQ(b.editDistance, 0);
        EXPECT_LE(filtered_stats.regionsAligned,
                  plain_stats.regionsAligned);
    }
}

TEST(MultiGraphMapper, PicksTheRightChromosome)
{
    const auto chr1 = sim::makeDataset(smallConfig(76));
    const auto chr2 = sim::makeDataset(smallConfig(77));
    SegramConfig config;
    config.earlyExitFraction = 1.0;
    const MultiGraphMapper mapper(
        {{"chr1", &chr1.graph, &chr1.index},
         {"chr2", &chr2.graph, &chr2.index}},
        config);
    EXPECT_EQ(mapper.numChromosomes(), 2u);

    Rng rng(78);
    for (int trial = 0; trial < 4; ++trial) {
        const uint64_t s1 =
            rng.nextBelow(chr1.donor.seq().size() - 400);
        const auto on1 =
            mapper.mapRead(chr1.donor.seq().substr(s1, 300));
        ASSERT_TRUE(on1.mapped);
        EXPECT_EQ(on1.chromosome, "chr1");
        EXPECT_EQ(on1.editDistance, 0);

        const uint64_t s2 =
            rng.nextBelow(chr2.donor.seq().size() - 400);
        PipelineStats stats;
        const auto on2 =
            mapper.mapRead(chr2.donor.seq().substr(s2, 300), &stats);
        ASSERT_TRUE(on2.mapped);
        EXPECT_EQ(on2.chromosome, "chr2");
        EXPECT_EQ(stats.readsTotal, 1u);
        EXPECT_EQ(stats.readsMapped, 1u);
    }
}

TEST(MultiGraphMapper, RejectsBadConstruction)
{
    EXPECT_THROW(MultiGraphMapper(std::vector<ChromosomeRef>{}),
                 InputError);
    const auto dataset = sim::makeDataset(smallConfig(79));
    EXPECT_THROW(MultiGraphMapper({{"x", nullptr, &dataset.index}}),
                 InputError);
    EXPECT_THROW(MultiGraphMapper({{"x", &dataset.graph, nullptr}}),
                 InputError);
}

TEST(SegramMapper, RequiresSortedGraph)
{
    graph::GraphBuilder builder;
    const auto a = builder.addNode("ACGTACGTACGTACGTACGT");
    const auto b = builder.addNode("TTTTACGTACGTACGTACGT");
    builder.addEdge(b, a); // backwards edge: not topologically sorted
    const auto bad_graph = std::move(builder).build();
    index::IndexConfig index_config;
    index_config.bucketBits = 8;
    const auto index =
        index::MinimizerIndex::build(bad_graph, index_config);
    EXPECT_THROW(SegramMapper(bad_graph, index), InputError);
}

} // namespace
} // namespace segram::core
