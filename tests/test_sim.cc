/**
 * @file
 * Tests for the simulators: genome/variant generation statistics, donor
 * construction, read error rates, and dataset assembly determinism.
 */

#include <gtest/gtest.h>

#include "src/baseline/dp_s2s.h"
#include "src/graph/graph_builder.h"
#include "src/sim/dataset.h"
#include "src/sim/genome_sim.h"
#include "src/sim/read_sim.h"
#include "src/sim/variant_sim.h"
#include "src/util/check.h"
#include "src/util/dna.h"
#include "src/util/rng.h"

namespace segram::sim
{
namespace
{

TEST(GenomeSim, GeneratesRequestedLengthAndAlphabet)
{
    Rng rng(1);
    GenomeConfig config;
    config.length = 10'000;
    const std::string genome = simulateGenome(config, rng);
    EXPECT_EQ(genome.size(), config.length);
    EXPECT_TRUE(isValidDna(genome));
}

TEST(GenomeSim, BaseCompositionRoughlyUniform)
{
    Rng rng(2);
    const std::string genome = randomSequence(40'000, rng);
    size_t counts[4] = {0, 0, 0, 0};
    for (const char base : genome)
        ++counts[baseToCode(base)];
    for (const auto count : counts)
        EXPECT_NEAR(static_cast<double>(count) / genome.size(), 0.25,
                    0.02);
}

TEST(GenomeSim, Deterministic)
{
    GenomeConfig config;
    config.length = 5'000;
    Rng a(7);
    Rng b(7);
    EXPECT_EQ(simulateGenome(config, a), simulateGenome(config, b));
}

TEST(VariantSim, MixMatchesConfiguredFractions)
{
    Rng rng(3);
    const std::string reference = randomSequence(500'000, rng);
    VariantConfig config;
    config.meanSpacing = 100.0;
    const auto variants = simulateVariants(reference, config, rng);
    ASSERT_GT(variants.size(), 1'000u);

    size_t snps = 0;
    size_t small_indels = 0;
    size_t svs = 0;
    uint64_t prev_end = 0;
    for (const auto &variant : variants) {
        EXPECT_GE(variant.pos, prev_end) << "variants must not overlap";
        prev_end = variant.pos + std::max<uint64_t>(variant.refSpan(), 1);
        const auto span =
            std::max(variant.ref.size(), variant.alt.size());
        if (variant.kind() == graph::VariantKind::Substitution) {
            ++snps;
        } else if (span <= config.maxIndelLen) {
            ++small_indels;
        } else {
            ++svs;
            EXPECT_GE(span, config.svMinLen);
            EXPECT_LE(span, config.svMaxLen);
        }
    }
    const double total = static_cast<double>(variants.size());
    EXPECT_NEAR(snps / total, 0.90, 0.03);
    EXPECT_NEAR(small_indels / total, 0.096, 0.03);
    EXPECT_NEAR(svs / total, 0.004, 0.004);
}

TEST(VariantSim, BuildsValidGraph)
{
    Rng rng(4);
    const std::string reference = randomSequence(100'000, rng);
    const auto variants = simulateVariants(reference, {}, rng);
    const auto graph = graph::buildGraph(reference, variants);
    EXPECT_TRUE(graph.isTopologicallySorted());
    EXPECT_GE(graph.totalSeqLen(), reference.size() / 2);
}

TEST(DonorGenome, NoVariantsIsIdentity)
{
    Rng rng(5);
    const std::string reference = randomSequence(5'000, rng);
    const auto graph = graph::buildGraph(reference, {});
    const DonorGenome donor(reference, {}, graph, 1.0, rng);
    EXPECT_EQ(donor.seq(), reference);
    for (uint64_t pos = 0; pos < reference.size(); pos += 503)
        EXPECT_EQ(donor.toLinear(pos), pos);
}

TEST(DonorGenome, AppliesAllVariantsAtProbabilityOne)
{
    Rng rng(6);
    const std::string reference = "ACGTACGTACGT";
    const std::vector<graph::Variant> variants = {
        {2, "G", "C"},   // SNP
        {5, "CG", ""},   // deletion
        {9, "", "TT"},   // insertion
    };
    const auto graph = graph::buildGraph(reference, variants);
    const DonorGenome donor(reference, variants, graph, 1.0, rng);
    EXPECT_EQ(donor.numAltsApplied(), 3u);
    // ACGTACGTACGT -> AC | C(snp) | TA | (CG deleted) | TA | TT(ins) | CGT
    EXPECT_EQ(donor.seq(), "ACCTATATTCGT");
}

TEST(DonorGenome, ProbabilityZeroKeepsReference)
{
    Rng rng(7);
    const std::string reference = randomSequence(10'000, rng);
    const auto variants = simulateVariants(reference, {}, rng);
    const auto graph = graph::buildGraph(reference, variants);
    const DonorGenome donor(reference, variants, graph, 0.0, rng);
    EXPECT_EQ(donor.seq(), reference);
    EXPECT_EQ(donor.numAltsApplied(), 0u);
}

TEST(ReadSim, ErrorFreeReadsAreExactSubstrings)
{
    Rng rng(8);
    const std::string reference = randomSequence(20'000, rng);
    const auto graph = graph::buildGraph(reference, {});
    const DonorGenome donor(reference, {}, graph, 0.5, rng);
    ReadSimConfig config;
    config.readLen = 500;
    config.numReads = 20;
    config.errors = {};
    const auto reads = simulateReads(donor, config, rng);
    ASSERT_EQ(reads.size(), config.numReads);
    for (const auto &read : reads) {
        EXPECT_EQ(read.seq.size(), config.readLen);
        EXPECT_EQ(read.seq,
                  donor.seq().substr(read.donorStart, config.readLen));
        EXPECT_EQ(read.plantedErrors, 0u);
        EXPECT_EQ(read.truthLinearStart, read.donorStart);
    }
}

TEST(ReadSim, ErrorRateIsRespected)
{
    Rng rng(9);
    const std::string reference = randomSequence(100'000, rng);
    const auto graph = graph::buildGraph(reference, {});
    const DonorGenome donor(reference, {}, graph, 0.5, rng);
    ReadSimConfig config;
    config.readLen = 5'000;
    config.numReads = 20;
    config.errors = ErrorProfile::pacbio(0.10);
    const auto reads = simulateReads(donor, config, rng);
    uint64_t total_errors = 0;
    for (const auto &read : reads) {
        total_errors += read.plantedErrors;
        // The edit distance to the error-free donor window must be
        // bounded by the planted error count.
        const std::string window = donor.seq().substr(
            read.donorStart,
            static_cast<size_t>(config.readLen * 1.25));
        const auto dp =
            baseline::semiGlobal(window, read.seq, false);
        EXPECT_LE(dp.editDistance,
                  static_cast<int>(read.plantedErrors));
    }
    const double observed =
        static_cast<double>(total_errors) /
        (static_cast<double>(config.readLen) * config.numReads);
    EXPECT_NEAR(observed, 0.10, 0.015);
}

TEST(ReadSim, IlluminaProfileIsSubstitutionHeavy)
{
    const auto profile = ErrorProfile::illumina();
    EXPECT_NEAR(profile.subFraction, 0.95, 1e-9);
    EXPECT_DOUBLE_EQ(profile.errorRate, 0.01);
}

TEST(ReadSim, RejectsBadConfig)
{
    Rng rng(10);
    const std::string reference = randomSequence(1'000, rng);
    const auto graph = graph::buildGraph(reference, {});
    const DonorGenome donor(reference, {}, graph, 0.5, rng);
    ReadSimConfig config;
    config.readLen = 5'000; // longer than the donor
    EXPECT_THROW(simulateReads(donor, config, rng), InputError);
}

TEST(Dataset, AssemblesAndIsDeterministic)
{
    DatasetConfig config;
    config.genome.length = 30'000;
    config.index.bucketBits = 12;
    config.seed = 99;
    const Dataset a = makeDataset(config);
    const Dataset b = makeDataset(config);
    EXPECT_EQ(a.reference, b.reference);
    EXPECT_EQ(a.variants.size(), b.variants.size());
    EXPECT_EQ(a.donor.seq(), b.donor.seq());
    EXPECT_EQ(a.graph.numNodes(), b.graph.numNodes());
    EXPECT_GT(a.variants.size(), 0u);
    EXPECT_TRUE(a.graph.isTopologicallySorted());
}

TEST(Dataset, LinearDatasetIsChain)
{
    DatasetConfig config;
    config.genome.length = 20'000;
    config.index.bucketBits = 12;
    const Dataset dataset = makeLinearDataset(config);
    EXPECT_TRUE(dataset.variants.empty());
    // Chain: every node except the last has exactly one successor.
    for (graph::NodeId id = 0; id + 1 < dataset.graph.numNodes(); ++id)
        EXPECT_EQ(dataset.graph.successors(id).size(), 1u);
    EXPECT_EQ(dataset.donor.seq(), dataset.reference);
}

} // namespace
} // namespace segram::sim
