/**
 * @file
 * Differential fuzz harness: the three structurally independent
 * aligner implementations in this repo — BitAlign (Bitap-style status
 * vectors over a DAG), Myers' 1999 algorithm (DP deltas in carry
 * chains) and the plain DP tables (dp_s2g / dp_s2s) — are used as
 * each other's oracles over hundreds of seeded random cases, the same
 * methodology GenASM (MICRO 2020) and SeGraM (ISCA 2022) used to
 * validate accuracy parity against software mappers.
 *
 * Two case families, both fully deterministic (fixed seeds, SplitMix64
 * RNG), together well over 500 cases:
 *
 *  - Random DAGs: BitAlign vs exact sequence-to-graph DP. Edit
 *    distances must match exactly whenever the oracle distance is
 *    within BitAlign's threshold k, the CIGAR must be a valid
 *    alignment of the read against the consumed graph path, and it
 *    must spend the whole read.
 *
 *  - Linear (chain) graphs: three-way BitAlign vs Myers vs
 *    sequence-to-sequence DP agreement, exercising the paper's
 *    universality claim (S2S is S2G on a chain graph).
 *
 * The harness *counts* its cases and asserts the floor, so a refactor
 * that silently skips generation shows up as a failure, not a green
 * run over nothing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/align/bitalign.h"
#include "src/align/bitalign_core.h"
#include "src/align/myers.h"
#include "src/baseline/dp_s2g.h"
#include "src/baseline/dp_s2s.h"
#include "src/graph/linearize.h"
#include "src/util/rng.h"
#include "tests/align_test_util.h"

namespace segram::align
{
namespace
{

using graph::LinearizedGraph;

TEST(Differential, BitAlignAgreesWithGraphDpOnRandomDags)
{
    // 24 seeds x 14 trials = 336 (graph, read) cases; BitAlign and the
    // exact DP must agree on every single one — zero disagreements.
    int cases = 0;
    int disagreements = 0;
    for (int seed = 1; seed <= 24; ++seed) {
        Rng rng(900'000 + seed);
        for (int trial = 0; trial < 14; ++trial) {
            const int size = 20 + static_cast<int>(rng.nextBelow(140));
            const auto text = randomDag(rng, size, 0.18, 0.02);
            int edits = 0;
            const std::string path = samplePath(
                text, rng, 8 + static_cast<int>(rng.nextBelow(48)));
            const double rate = 0.02 + 0.18 * rng.nextDouble();
            const std::string read = mutate(path, rng, rate, &edits);
            const int k = std::max<int>(6, edits + 4);
            ++cases;

            const auto bitalign = alignWindow(text, read, k);
            const auto oracle = baseline::dpGraphDistance(text, read);
            if (oracle.editDistance > k) {
                // Above threshold BitAlign must not claim a hit.
                EXPECT_FALSE(bitalign.found)
                    << "seed " << seed << " trial " << trial;
                disagreements += bitalign.found;
                continue;
            }
            ASSERT_TRUE(bitalign.found)
                << "seed " << seed << " trial " << trial << " oracle "
                << oracle.editDistance << " k " << k;
            EXPECT_EQ(bitalign.editDistance, oracle.editDistance)
                << "seed " << seed << " trial " << trial;
            disagreements +=
                bitalign.editDistance != oracle.editDistance;

            // The CIGAR must be a real alignment of the read against
            // the consumed graph path, spend the whole read, and cost
            // exactly the claimed distance.
            const std::string ref_path =
                consumedPath(text, bitalign.textPositions);
            EXPECT_TRUE(bitalign.cigar.validate(read, ref_path))
                << "read " << read << " path " << ref_path;
            EXPECT_EQ(bitalign.cigar.readLength(), read.size());
            EXPECT_EQ(bitalign.cigar.editDistance(),
                      static_cast<uint64_t>(bitalign.editDistance));
        }
    }
    EXPECT_GE(cases, 300);
    EXPECT_EQ(disagreements, 0);
}

TEST(Differential, ThreeWayAgreementOnLinearGraphs)
{
    // 20 seeds x 14 trials = 280 chain-graph cases; BitAlign, Myers
    // and the S2S DP table must report the same semi-global edit
    // distance (Myers only up to its 64-char pattern limit).
    int cases = 0;
    int disagreements = 0;
    int myers_cases = 0;
    for (int seed = 1; seed <= 20; ++seed) {
        Rng rng(700'000 + seed);
        for (int trial = 0; trial < 14; ++trial) {
            const int n = 24 + static_cast<int>(rng.nextBelow(140));
            std::string text;
            for (int i = 0; i < n; ++i)
                text.push_back(rng.nextBase());
            LinearizedGraph chain;
            for (int i = 0; i < n; ++i)
                chain.pushChar(text[i],
                               i + 1 < n ? std::vector<uint16_t>{1}
                                         : std::vector<uint16_t>{});
            chain.finalize();

            int edits = 0;
            const int start = static_cast<int>(rng.nextBelow(n / 2));
            const int len = 1 + static_cast<int>(rng.nextBelow(
                                    std::min(64, n - start)));
            const std::string read =
                mutate(text.substr(start, len), rng,
                       0.02 + 0.2 * rng.nextDouble(), &edits);
            ++cases;

            const auto dp = baseline::semiGlobal(text, read, false);
            const int k = dp.editDistance + 2;
            const auto bitalign = alignWindow(chain, read, k);
            ASSERT_TRUE(bitalign.found)
                << "seed " << seed << " trial " << trial;
            EXPECT_EQ(bitalign.editDistance, dp.editDistance)
                << "seed " << seed << " trial " << trial;
            disagreements += bitalign.editDistance != dp.editDistance;
            if (read.size() <= 64) {
                ++myers_cases;
                const auto myers = myersAlign(text, read);
                EXPECT_EQ(myers.editDistance, dp.editDistance)
                    << "seed " << seed << " trial " << trial;
                disagreements += myers.editDistance != dp.editDistance;
            }
        }
    }
    EXPECT_GE(cases, 250);
    EXPECT_GE(myers_cases, 200); // most reads fit Myers' 64-char limit
    EXPECT_EQ(disagreements, 0);
}

TEST(Differential, WindowedBitAlignNeverBeatsTheExactDp)
{
    // The divide-and-conquer mode is a heuristic *upper bound*: it may
    // overshoot the exact distance but must never undercut it, and its
    // CIGAR must still spend the read. 60 long-read style cases.
    int cases = 0;
    for (int seed = 1; seed <= 6; ++seed) {
        Rng rng(800'000 + seed);
        for (int trial = 0; trial < 10; ++trial) {
            const auto text = randomDag(rng, 700, 0.08, 0.0);
            int edits = 0;
            // The divide-and-conquer contract: the alignment must
            // start within the first window (MinSeed regions
            // guarantee this in the pipeline), so restrict the
            // sampled path start accordingly.
            std::string path = samplePath(text, rng, 450, 24);
            if (static_cast<int>(path.size()) < 220)
                continue;
            const std::string read =
                mutate(path, rng, 0.05, &edits);
            BitAlignConfig config;
            config.windowLen = 96;
            config.overlap = 32;
            config.windowEditCap = 24;
            const auto windowed = alignWindowed(text, read, config);
            if (!windowed.found)
                continue;
            ++cases;
            const auto oracle = baseline::dpGraphDistance(text, read);
            EXPECT_GE(windowed.editDistance, oracle.editDistance)
                << "seed " << seed << " trial " << trial;
            EXPECT_EQ(windowed.cigar.readLength(), read.size());
        }
    }
    EXPECT_GE(cases, 20);
}

} // namespace
} // namespace segram::align
