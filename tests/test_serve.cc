/**
 * @file
 * Tests of the serving stack, bottom-up: the wire protocol codec, the
 * bounded admission queue, the latency histogram, the MappingService
 * (daemon output must equal the library driver's, record for record),
 * and the full daemon over a real Unix socket — byte-identity with
 * the offline formatting path, backpressure, multi-tenant routing,
 * reload-under-traffic and graceful shutdown, all in-process so the
 * scheduler can interleave threads freely under the sanitizers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/core/reference.h"
#include "src/core/sharded_mapper.h"
#include "src/io/paf.h"
#include "src/serve/admission.h"
#include "src/serve/client.h"
#include "src/serve/metrics.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/sim/dataset.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace
{

using namespace segram;
using namespace segram::serve;

// ---------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesEveryVerb)
{
    EXPECT_EQ(parseRequestLine("PING", 10).kind, RequestKind::Ping);
    EXPECT_EQ(parseRequestLine("STATS", 10).kind, RequestKind::Stats);
    EXPECT_EQ(parseRequestLine("QUIT", 10).kind, RequestKind::Quit);

    const Request map = parseRequestLine("MAP chr1 7", 10);
    EXPECT_EQ(map.kind, RequestKind::Map);
    EXPECT_EQ(map.reference, "chr1");
    EXPECT_EQ(map.readCount, 7u);

    const Request reload =
        parseRequestLine("RELOAD hg38 /data/my packs/v2.segram", 10);
    EXPECT_EQ(reload.kind, RequestKind::Reload);
    EXPECT_EQ(reload.reference, "hg38");
    // Everything after the reference is the path — spaces included.
    EXPECT_EQ(reload.packPath, "/data/my packs/v2.segram");
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    EXPECT_THROW(parseRequestLine("", 10), InputError);
    EXPECT_THROW(parseRequestLine("NOPE", 10), InputError);
    EXPECT_THROW(parseRequestLine("PING extra", 10), InputError);
    EXPECT_THROW(parseRequestLine("MAP chr1", 10), InputError);
    EXPECT_THROW(parseRequestLine("MAP chr1 0", 10), InputError);
    EXPECT_THROW(parseRequestLine("MAP chr1 11", 10), InputError);
    EXPECT_THROW(parseRequestLine("MAP chr1 seven", 10), InputError);
    EXPECT_THROW(parseRequestLine("RELOAD chr1", 10), InputError);
}

TEST(ServeProtocol, ReadLinesNormalizeLikeFileIngestion)
{
    const ReadRecord read = parseReadLine("r1\tacgtACGT");
    EXPECT_EQ(read.name, "r1");
    EXPECT_EQ(read.seq, "ACGTACGT"); // lower case normalized up

    EXPECT_THROW(parseReadLine("noseparator"), InputError);
    EXPECT_THROW(parseReadLine("\tACGT"), InputError);
    EXPECT_THROW(parseReadLine("r1\t"), InputError);
    EXPECT_THROW(parseReadLine("r 1\tACGT"), InputError);
}

TEST(ServeProtocol, ResponseHeadRoundTrips)
{
    const ResponseHead ok = parseResponseHead("OK 42");
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.count, 42u);

    // Zero payload lines is legal in responses (PING, RELOAD) even
    // though a zero-read MAP request is not.
    const ResponseHead empty = parseResponseHead("OK 0");
    EXPECT_TRUE(empty.ok);
    EXPECT_EQ(empty.count, 0u);

    const ResponseHead err =
        parseResponseHead("ERR BUSY queue full, retry");
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.code, "BUSY");
    EXPECT_EQ(err.message, "queue full, retry");

    EXPECT_THROW(parseResponseHead("WHAT 3"), InputError);
    EXPECT_THROW(parseResponseHead("OK x"), InputError);
}

TEST(ServeProtocol, FormatErrorFlattensNewlines)
{
    // The framing is line-oriented: a newline smuggled into an error
    // message would desynchronize every later response.
    EXPECT_EQ(formatError(kErrInternal, "line1\nline2"),
              "ERR INTERNAL line1 line2\n");
}

// --------------------------------------------------------- admission

TEST(AdmissionQueue, RejectsWhenFullAndPreservesOrder)
{
    AdmissionQueue queue(2);
    MapJob first;
    first.reads.push_back({"a", "ACGT"});
    MapJob second;
    second.reads.push_back({"b", "ACGT"});
    EXPECT_TRUE(queue.tryPush(std::move(first)));
    EXPECT_TRUE(queue.tryPush(std::move(second)));
    EXPECT_EQ(queue.depth(), 2u);

    MapJob overflow;
    EXPECT_FALSE(queue.tryPush(std::move(overflow))); // ERR BUSY path

    auto a = queue.pop();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->reads[0].name, "a"); // FIFO
    auto b = queue.pop();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->reads[0].name, "b");
}

TEST(AdmissionQueue, StopDrainsAdmittedJobsThenSignalsEnd)
{
    AdmissionQueue queue(4);
    MapJob job;
    job.reads.push_back({"a", "ACGT"});
    EXPECT_TRUE(queue.tryPush(std::move(job)));
    queue.stop();

    MapJob late;
    EXPECT_FALSE(queue.tryPush(std::move(late))); // no new admissions

    EXPECT_TRUE(queue.pop().has_value());  // admitted work drains
    EXPECT_FALSE(queue.pop().has_value()); // then the end signal
}

TEST(AdmissionQueue, PopBlocksUntilPushFromAnotherThread)
{
    AdmissionQueue queue(1);
    std::thread producer([&queue] {
        MapJob job;
        job.reads.push_back({"x", "ACGT"});
        while (!queue.tryPush(std::move(job)))
            std::this_thread::yield();
    });
    const auto job = queue.pop(); // blocks until the producer lands
    producer.join();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->reads[0].name, "x");
}

// ----------------------------------------------------------- metrics

TEST(LatencyHistogram, PercentilesBracketRecordedValues)
{
    LatencyHistogram histogram;
    for (int i = 0; i < 95; ++i)
        histogram.record(1000); // ~1 ms
    for (int i = 0; i < 5; ++i)
        histogram.record(1'000'000); // 5% ~1 s outliers

    EXPECT_EQ(histogram.count(), 100u);
    // Log2 buckets overestimate by at most 2x: the p50 must sit near
    // 1 ms (not the outlier), the p99 must see the outlier.
    EXPECT_LE(histogram.percentileMs(0.5), 3.0);
    EXPECT_GE(histogram.percentileMs(0.99), 500.0);
    EXPECT_GT(histogram.meanMs(), 0.0);
}

// ----------------------------------------------- service + end to end

sim::DatasetConfig
smallConfig(uint64_t seed)
{
    sim::DatasetConfig config;
    config.genome.length = 20'000;
    config.index.bucketBits = 12;
    config.seed = seed;
    return config;
}

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("segram_serve_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);

        std::vector<core::PreprocessedChromosome> chromosomes;
        dataset_ = std::make_unique<sim::Dataset>(
            sim::makeDataset(smallConfig(7)));
        chromosomes.push_back({"chr1", dataset_->graph,
                               dataset_->index});
        core::PreprocessedReference(std::move(chromosomes))
            .save(packPath());

        Rng rng(99);
        sim::ReadSimConfig read_config{
            120, 24, sim::ErrorProfile::illumina(0.02)};
        read_config.revCompProbability = 0.25;
        const auto simulated =
            sim::simulateReads(dataset_->donor, read_config, rng);
        for (size_t i = 0; i < simulated.size(); ++i)
            reads_.push_back({"r" + std::to_string(i),
                              simulated[i].seq});
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string packPath() const
    {
        return (dir_ / "ref.segram").string();
    }
    std::string socketPath() const
    {
        return (dir_ / "sv.sock").string();
    }

    /** The offline ground truth: the same pack mapped through the
     *  library driver and formatted through the same PAF writer. */
    std::string
    offlinePaf(const ServiceConfig &config) const
    {
        const auto reference =
            core::PreprocessedReference::load(packPath(),
                                              config.load);
        const core::ShardedBatchMapper mapper(
            reference, config.segram, config.batch);
        std::vector<std::string_view> seqs;
        for (const auto &read : reads_)
            seqs.push_back(read.seq);
        const auto results = mapper.mapBatch(
            std::span<const std::string_view>(seqs));
        std::string paf;
        for (size_t i = 0; i < results.size(); ++i) {
            if (!results[i].mapped)
                continue;
            io::formatPaf(
                paf, io::makePafRecord(
                         reads_[i].name, reads_[i].seq.size(),
                         results[i].reverseComplemented ? '-' : '+',
                         results[i].chromosome,
                         reference.graph(0).totalSeqLen(),
                         results[i].linearStart, results[i].cigar));
        }
        return paf;
    }

    std::filesystem::path dir_;
    std::unique_ptr<sim::Dataset> dataset_;
    std::vector<ReadRecord> reads_;
};

TEST_F(ServeTest, ServiceMatchesLibraryDriverExactly)
{
    ServiceConfig config;
    config.batch.threads = 2;
    MappingService service("chr", packPath(), config);
    const Reply reply = service.map(reads_);
    EXPECT_TRUE(reply.ok);
    EXPECT_GT(reply.lines, 0u);
    EXPECT_EQ(reply.payload, offlinePaf(config));

    const auto snap = service.snapshot();
    EXPECT_EQ(snap.requests, 1u);
    EXPECT_EQ(snap.reads, reads_.size());
}

TEST_F(ServeTest, RegistryReloadSwapsAtomicallyAndRejectsUnknown)
{
    ServiceConfig config;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("ref", packPath(),
                                                  config));
    const auto before = registry.find("ref");
    ASSERT_NE(before, nullptr);

    // A reload of a broken pack must leave the old tenant serving.
    EXPECT_THROW(registry.reload("ref", (dir_ / "nope.segram")
                                            .string()),
                 InputError);
    EXPECT_EQ(registry.find("ref"), before);

    registry.reload("ref", packPath());
    const auto after = registry.find("ref");
    ASSERT_NE(after, nullptr);
    EXPECT_NE(after, before); // fresh service, old one drains

    EXPECT_THROW(registry.reload("ghost", packPath()), InputError);
    EXPECT_EQ(registry.find("ghost"), nullptr);
}

TEST_F(ServeTest, EndToEndMapIsByteIdenticalToOffline)
{
    ServiceConfig config;
    config.batch.threads = 2;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("ref", packPath(),
                                                  config));
    ServerConfig server_config;
    server_config.unixPath = socketPath();
    Server server(registry, server_config);
    server.start();

    auto client = ServeClient::connectUnixSocket(socketPath());
    EXPECT_TRUE(client.ping().ok);

    const Reply reply = client.mapReads("ref", reads_);
    ASSERT_TRUE(reply.ok) << reply.code << " " << reply.message;
    EXPECT_EQ(reply.payload, offlinePaf(config));

    // STATS carries the operational surface the README documents.
    const Reply stats = client.stats();
    ASSERT_TRUE(stats.ok);
    for (const char *key :
         {"server.requests", "server.map_requests", "server.reads",
          "server.queue_depth", "server.latency_p50_ms",
          "server.latency_p99_ms", "server.kernel_backend",
          "tenant.ref.requests", "tenant.ref.reads_mapped"}) {
        EXPECT_NE(stats.payload.find(key), std::string::npos)
            << "missing STATS key " << key;
    }
    server.stop();
}

TEST_F(ServeTest, RoutesPerReferenceAndRejectsUnknown)
{
    ServiceConfig config;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("a", packPath(),
                                                  config));
    registry.add(std::make_shared<MappingService>("b", packPath(),
                                                  config));
    ServerConfig server_config;
    server_config.unixPath = socketPath();
    Server server(registry, server_config);
    server.start();

    auto client = ServeClient::connectUnixSocket(socketPath());
    EXPECT_TRUE(client.mapReads("a", reads_).ok);
    EXPECT_TRUE(client.mapReads("b", reads_).ok);

    const Reply missing = client.mapReads("c", reads_);
    EXPECT_FALSE(missing.ok);
    EXPECT_EQ(missing.code, kErrNoRef);
    // The session survives an unknown reference.
    EXPECT_TRUE(client.ping().ok);
    server.stop();
}

TEST_F(ServeTest, MalformedPayloadGetsBadReqAndKeepsFraming)
{
    ServiceConfig config;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("ref", packPath(),
                                                  config));
    ServerConfig server_config;
    server_config.unixPath = socketPath();
    Server server(registry, server_config);
    server.start();

    // Raw wire access: one well-framed MAP whose payload line is
    // garbage. The server must consume the whole payload (no
    // desynchronization) and answer ERR BADREQ.
    UniqueFd fd = connectUnix(socketPath());
    ASSERT_TRUE(sendAll(fd.get(), "MAP ref 1\nmissing-tab-line\n"));
    LineReader reader(fd.get());
    std::string line;
    ASSERT_TRUE(reader.readLine(line));
    EXPECT_EQ(parseResponseHead(line).code, kErrBadReq);

    // Same connection, next request parses cleanly: framing survived.
    ASSERT_TRUE(sendAll(fd.get(), "PING\n"));
    ASSERT_TRUE(reader.readLine(line));
    EXPECT_TRUE(parseResponseHead(line).ok);
    server.stop();
}

TEST_F(ServeTest, ClientVanishingMidRequestLeavesDaemonServing)
{
    ServiceConfig config;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("ref", packPath(),
                                                  config));
    ServerConfig server_config;
    server_config.unixPath = socketPath();
    Server server(registry, server_config);
    server.start();

    {
        // Announce a 5-read payload, send half a read, hang up.
        UniqueFd dying = connectUnix(socketPath());
        ASSERT_TRUE(sendAll(dying.get(), "MAP ref 5\nr0\tACG"));
    } // fd closes here — mid-payload

    // A fresh client still gets full service.
    auto client = ServeClient::connectUnixSocket(socketPath());
    EXPECT_TRUE(client.ping().ok);
    const Reply reply = client.mapReads("ref", reads_);
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ(reply.payload, offlinePaf(config));
    server.stop();
}

TEST_F(ServeTest, ReloadUnderTrafficDropsAndDuplicatesNothing)
{
    ServiceConfig config;
    config.batch.threads = 2;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("ref", packPath(),
                                                  config));
    ServerConfig server_config;
    server_config.unixPath = socketPath();
    Server server(registry, server_config);
    server.start();

    const std::string expected = offlinePaf(config);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> completed{0};

    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            auto client =
                ServeClient::connectUnixSocket(socketPath());
            while (!stop.load()) {
                const Reply reply = client.mapReads("ref", reads_);
                // BUSY is a legal answer under load; anything else
                // must be the exact offline payload.
                if (!reply.ok) {
                    if (reply.code != kErrBusy)
                        mismatches.fetch_add(1);
                    continue;
                }
                if (reply.payload != expected)
                    mismatches.fetch_add(1);
                completed.fetch_add(1);
            }
            (void)c;
        });
    }

    // Reload the same pack repeatedly while the clients hammer MAP:
    // every response must come back complete and identical — the
    // drain-on-old/swap-to-new contract.
    auto admin = ServeClient::connectUnixSocket(socketPath());
    for (int r = 0; r < 3; ++r) {
        const Reply reply = admin.reload("ref", packPath());
        EXPECT_TRUE(reply.ok) << reply.code << " " << reply.message;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    while (completed.load() < 6) // make sure mapping really happened
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true);
    for (auto &thread : clients)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0u);
    server.stop();
}

TEST_F(ServeTest, GracefulStopAnswersEveryAdmittedRequest)
{
    ServiceConfig config;
    ServiceRegistry registry;
    registry.add(std::make_shared<MappingService>("ref", packPath(),
                                                  config));
    ServerConfig server_config;
    server_config.unixPath = socketPath();
    Server server(registry, server_config);
    server.start();

    // Launch a request, then stop the server while it may still be
    // in flight: the admitted MAP must be answered, completely.
    std::promise<Reply> done;
    std::thread in_flight([&] {
        auto client = ServeClient::connectUnixSocket(socketPath());
        done.set_value(client.mapReads("ref", reads_));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.stop();
    in_flight.join();
    const Reply reply = done.get_future().get();
    EXPECT_TRUE(reply.ok) << reply.code << " " << reply.message;
    EXPECT_EQ(reply.payload, offlinePaf(config));
}

} // namespace
