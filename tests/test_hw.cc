/**
 * @file
 * Tests for the hardware model: cycle calibration against the paper's
 * published numbers (169/272 cycles, 250/125 windows, 42.3k/34.0k
 * cycles per 10 kbp read), Table 1 totals, and system scaling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/hw/area_power.h"
#include "src/hw/config.h"
#include "src/hw/cycle_model.h"
#include "src/hw/pipeline_model.h"
#include "src/hw/system_model.h"
#include "src/util/check.h"

namespace segram::hw
{
namespace
{

TEST(CycleModel, MatchesPaperAnchors)
{
    // Section 11.3: "each window execution of GenASM takes 169 cycles,
    // whereas it takes 272 cycles for BitAlign".
    EXPECT_DOUBLE_EQ(cyclesPerWindow(HwConfig::segram()), 272.0);
    EXPECT_DOUBLE_EQ(cyclesPerWindow(HwConfig::genasm()), 169.0);
}

TEST(CycleModel, WindowCountsMatchPaper)
{
    // "the number of windows required to consume 10 kbp is 250 for
    // GenASM, whereas this number is 125 for BitAlign".
    EXPECT_EQ(windowsPerRead(10'000, HwConfig::segram()), 125);
    EXPECT_EQ(windowsPerRead(10'000, HwConfig::genasm()), 250);
    EXPECT_EQ(windowsPerRead(100, HwConfig::segram()), 1);
}

TEST(CycleModel, PerReadCyclesMatchPaper)
{
    // "BitAlign (34.0k cycles) performs better than GenASM (42.3k
    // cycles) by 24% (1.2x)".
    const double bitalign =
        bitalignCyclesPerSeed(10'000, HwConfig::segram());
    const double genasm =
        bitalignCyclesPerSeed(10'000, HwConfig::genasm());
    EXPECT_NEAR(bitalign, 34'000.0, 1.0);
    EXPECT_NEAR(genasm, 42'250.0, 1.0);
    EXPECT_NEAR(genasm / bitalign, 1.24, 0.02);
}

TEST(CycleModel, TimingPipelinesMinSeedBehindBitAlign)
{
    ReadWorkload workload;
    workload.readLen = 10'000;
    workload.seedsPerRead = 100.0;
    workload.minimizersPerRead = 1'800.0;
    workload.seedHitsPerMinimizer = 1.2;
    workload.regionBytes = 4'000.0;
    const auto timing = estimateTiming(HwConfig::segram(), workload);
    EXPECT_GT(timing.bitalignUsPerSeed, 0.0);
    EXPECT_GE(timing.usPerSeed, timing.bitalignUsPerSeed);
    EXPECT_GE(timing.usPerSeed, timing.minseedUsPerSeed);
    EXPECT_NEAR(timing.usPerRead,
                timing.usPerSeed * workload.seedsPerRead, 1e-9);
    // The paper reports ~35.9 us per seed execution for long reads;
    // BitAlign alone is 34.0 us at 1 GHz.
    EXPECT_NEAR(timing.bitalignUsPerSeed, 34.0, 0.1);
}

TEST(CycleModel, RejectsBadWorkload)
{
    ReadWorkload workload;
    workload.seedsPerRead = 0.0;
    EXPECT_THROW(estimateTiming(HwConfig::segram(), workload), InputError);
    EXPECT_THROW(windowsPerRead(0, HwConfig::segram()), InputError);
}

TEST(AreaPower, MatchesTable1Totals)
{
    const auto breakdown = modelAreaPower(HwConfig::segram());
    const auto total = breakdown.accelTotal();
    // Paper Table 1: 0.867 mm2 and 758 mW per accelerator.
    EXPECT_NEAR(total.areaMm2, 0.867, 0.01);
    EXPECT_NEAR(total.powerMw, 758.0, 8.0);
    // 32 accelerators: 27.7 mm2 and 24.3 W; +HBM = 28.1 W.
    const auto system = breakdown.systemTotal(HwConfig::segram());
    EXPECT_NEAR(system.areaMm2, 27.7, 0.4);
    EXPECT_NEAR(system.powerMw / 1000.0, 24.3, 0.3);
    EXPECT_NEAR(system.powerMw / 1000.0 +
                    breakdown.hbmPowerW(HwConfig::segram()),
                28.1, 0.4);
}

TEST(AreaPower, HopQueuesDominateEditLogic)
{
    // "the hop queue registers ... constitute more than 60% of the area
    // and power of BitAlign's edit distance calculation logic".
    const auto breakdown = modelAreaPower(HwConfig::segram());
    const double area_share =
        breakdown.hopQueues.areaMm2 /
        (breakdown.hopQueues.areaMm2 +
         breakdown.bitalignEditLogic.areaMm2);
    const double power_share =
        breakdown.hopQueues.powerMw /
        (breakdown.hopQueues.powerMw +
         breakdown.bitalignEditLogic.powerMw);
    EXPECT_GT(area_share, 0.60);
    EXPECT_GT(power_share, 0.60);
}

TEST(AreaPower, ScalesWithConfiguration)
{
    HwConfig small = HwConfig::segram();
    small.numPes = 32;
    small.hopQueueDepth = 6;
    small.hopQueueBytesPerPe = 96;
    const auto big = modelAreaPower(HwConfig::segram()).accelTotal();
    const auto little = modelAreaPower(small).accelTotal();
    EXPECT_LT(little.areaMm2, big.areaMm2);
    EXPECT_LT(little.powerMw, big.powerMw);
}

TEST(AreaPower, PrintsTable)
{
    std::ostringstream out;
    printTable1(out, HwConfig::segram());
    const std::string text = out.str();
    EXPECT_NE(text.find("MinSeed logic"), std::string::npos);
    EXPECT_NE(text.find("hop queue"), std::string::npos);
    EXPECT_NE(text.find("Total"), std::string::npos);
}

TEST(SystemModel, LinearAcceleratorScaling)
{
    ReadWorkload workload;
    workload.readLen = 10'000;
    workload.seedsPerRead = 50.0;
    workload.minimizersPerRead = 1'800.0;
    workload.regionBytes = 4'000.0;
    const HwConfig config = HwConfig::segram();
    const double one = scaledThroughput(config, workload, 1);
    const double sixteen = scaledThroughput(config, workload, 16);
    const double thirty_two = scaledThroughput(config, workload, 32);
    EXPECT_NEAR(sixteen / one, 16.0, 1e-6);
    EXPECT_NEAR(thirty_two / one, 32.0, 1e-6);
    EXPECT_THROW(scaledThroughput(config, workload, 0), InputError);
    EXPECT_THROW(scaledThroughput(config, workload, 33), InputError);
}

TEST(SystemModel, EstimateIsConsistent)
{
    ReadWorkload workload;
    workload.readLen = 150;
    workload.seedsPerRead = 30.0;
    workload.minimizersPerRead = 25.0;
    workload.seedHitsPerMinimizer = 1.5;
    workload.regionBytes = 300.0;
    const auto estimate = estimateSystem(HwConfig::segram(), workload);
    EXPECT_GT(estimate.readsPerSecPerAccel, 0.0);
    EXPECT_NEAR(estimate.readsPerSecTotal,
                estimate.readsPerSecPerAccel * 32, 1e-6);
    EXPECT_GT(estimate.totalPowerW, estimate.accelPowerW);
    // Short reads keep the channel far from saturation.
    EXPECT_FALSE(estimate.bandwidthBound);
}

TEST(SystemModel, ShortReadsAreFasterThanLongReads)
{
    ReadWorkload long_reads;
    long_reads.readLen = 10'000;
    long_reads.seedsPerRead = 100.0;
    long_reads.minimizersPerRead = 1'800.0;
    long_reads.regionBytes = 4'000.0;
    ReadWorkload short_reads;
    short_reads.readLen = 150;
    short_reads.seedsPerRead = 30.0;
    short_reads.minimizersPerRead = 25.0;
    short_reads.regionBytes = 300.0;
    const auto config = HwConfig::segram();
    EXPECT_GT(estimateSystem(config, short_reads).readsPerSecTotal,
              estimateSystem(config, long_reads).readsPerSecTotal * 10);
}

TEST(CycleModel, MonotoneInReadLengthAndSeeds)
{
    const auto config = HwConfig::segram();
    ReadWorkload workload;
    workload.minimizersPerRead = 100.0;
    workload.seedsPerRead = 10.0;
    workload.regionBytes = 500.0;
    double prev = 0.0;
    for (const int len : {100, 500, 1'000, 5'000, 10'000}) {
        workload.readLen = len;
        const double us = estimateTiming(config, workload).usPerRead;
        EXPECT_GT(us, prev) << len;
        prev = us;
    }
    workload.readLen = 1'000;
    prev = 0.0;
    for (const double seeds : {1.0, 10.0, 100.0, 1'000.0}) {
        workload.seedsPerRead = seeds;
        const double us = estimateTiming(config, workload).usPerRead;
        EXPECT_GT(us, prev) << seeds;
        prev = us;
    }
}

TEST(SystemModel, BandwidthBoundWorkloadIsThrottled)
{
    // An absurdly memory-heavy workload must trip the bandwidth bound
    // and reduce throughput relative to the unthrottled estimate.
    ReadWorkload heavy;
    heavy.readLen = 150;
    heavy.seedsPerRead = 50.0;
    heavy.minimizersPerRead = 30.0;
    heavy.regionBytes = 50'000'000.0; // 50 MB per seed
    HwConfig config = HwConfig::segram();
    config.hbmChannelBwGBps = 0.5;
    const auto estimate = estimateSystem(config, heavy);
    EXPECT_TRUE(estimate.bandwidthBound);
    const auto timing = estimateTiming(config, heavy);
    EXPECT_LT(estimate.readsPerSecPerAccel,
              1e6 / timing.usPerRead * 1.0001);
}

TEST(CycleModel, GenasmConfigInterpolation)
{
    // The linear calibration must interpolate smoothly between and
    // beyond the two anchor widths.
    HwConfig config = HwConfig::segram();
    config.bitsPerPe = 96;
    const double mid = cyclesPerWindow(config);
    EXPECT_GT(mid, 169.0);
    EXPECT_LT(mid, 272.0);
    config.bitsPerPe = 256;
    EXPECT_GT(cyclesPerWindow(config), 272.0);
}

TEST(PipelineModel, MinSeedLatencyIsHiddenOnLongReads)
{
    // Section 8.3: the double-buffered pipeline "completely hides the
    // latency of MinSeed" — BitAlign stalls should be negligible for
    // the paper's long-read workload on an HBM channel.
    ReadWorkload workload;
    workload.readLen = 10'000;
    workload.seedsPerRead = 100.0;
    workload.minimizersPerRead = 1'800.0;
    workload.regionBytes = 4'000.0;
    const auto sim =
        simulatePipeline(HwConfig::segram(), workload);
    EXPECT_EQ(sim.batches, 1u); // 2050-minimizer capacity per batch
    EXPECT_LT(sim.stallFraction(), 0.02);
    EXPECT_NEAR(sim.totalUs, sim.bitalignBusyUs,
                0.05 * sim.totalUs);
}

TEST(PipelineModel, SlowMemoryExposesMinSeed)
{
    ReadWorkload workload;
    workload.readLen = 10'000;
    workload.seedsPerRead = 100.0;
    workload.minimizersPerRead = 1'800.0;
    workload.regionBytes = 4'000.0;
    HwConfig slow = HwConfig::segram();
    slow.hbmLatencyNs = 5'000.0;
    slow.hbmChannelBwGBps = 0.2;
    slow.memoryParallelism = 1;
    const auto sim = simulatePipeline(slow, workload);
    EXPECT_GT(sim.stallFraction(), 0.2);
    EXPECT_GT(sim.totalUs,
              simulatePipeline(HwConfig::segram(), workload).totalUs);
}

TEST(PipelineModel, OversizedReadTriggersBatching)
{
    // A read whose minimizers exceed the 40 kB scratchpad (2050 per
    // half) must fall back to the paper's batching approach.
    ReadWorkload workload;
    workload.readLen = 100'000;
    workload.seedsPerRead = 1'000.0;
    workload.minimizersPerRead = 18'000.0;
    workload.regionBytes = 4'000.0;
    const auto sim =
        simulatePipeline(HwConfig::segram(), workload);
    EXPECT_GT(sim.batches, 1u);
    // Batching costs a little extra but the pipeline still runs.
    EXPECT_GT(sim.totalUs, 0.0);
    EXPECT_LT(sim.stallFraction(), 0.5);
}

TEST(AreaPower, GenasmVariantIsSmaller)
{
    const auto segram = modelAreaPower(HwConfig::segram()).accelTotal();
    const auto genasm = modelAreaPower(HwConfig::genasm()).accelTotal();
    // Narrower PEs and smaller bitvector scratchpads must cost less.
    EXPECT_LT(genasm.areaMm2, segram.areaMm2);
    EXPECT_LT(genasm.powerMw, segram.powerMw);
}

} // namespace
} // namespace segram::hw
