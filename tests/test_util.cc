/**
 * @file
 * Unit and property tests for the util substrate: bitvectors, DNA
 * codes, packed sequences, the invertible hash, CIGARs and the RNG.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/bitvector.h"
#include "src/util/check.h"
#include "src/util/cigar.h"
#include "src/util/dna.h"
#include "src/util/hash.h"
#include "src/util/packed_seq.h"
#include "src/util/rng.h"
#include "src/util/table_storage.h"
#include "src/util/stats.h"

namespace segram
{
namespace
{

TEST(Bitvector, ConstructsAllOnes)
{
    Bitvector bv(130);
    EXPECT_EQ(bv.width(), 130);
    EXPECT_EQ(bv.numWords(), 3);
    for (int i = 0; i < 130; ++i)
        EXPECT_TRUE(bv.test(i)) << i;
    EXPECT_EQ(bv.countZeros(), 0);
}

TEST(Bitvector, SetAndTest)
{
    Bitvector bv(70);
    bv.set(0, false);
    bv.set(64, false);
    bv.set(69, false);
    EXPECT_FALSE(bv.test(0));
    EXPECT_FALSE(bv.test(64));
    EXPECT_FALSE(bv.test(69));
    EXPECT_TRUE(bv.test(1));
    EXPECT_EQ(bv.countZeros(), 3);
}

TEST(Bitvector, ShiftBringsZeroIntoBitZero)
{
    Bitvector bv(65);
    bv.shiftLeftOne();
    EXPECT_FALSE(bv.test(0));
    for (int i = 1; i < 65; ++i)
        EXPECT_TRUE(bv.test(i)) << i;
}

TEST(Bitvector, ShiftCarriesAcrossWords)
{
    Bitvector bv(128, false);
    bv.set(63, true);
    bv.shiftLeftOne();
    EXPECT_FALSE(bv.test(63));
    EXPECT_TRUE(bv.test(64));
}

TEST(Bitvector, AndOrSemantics)
{
    Bitvector a(8, false);
    Bitvector b(8, false);
    a.set(1, true);
    a.set(2, true);
    b.set(2, true);
    b.set(3, true);
    EXPECT_TRUE((a & b).test(2));
    EXPECT_FALSE((a & b).test(1));
    EXPECT_TRUE((a | b).test(1));
    EXPECT_TRUE((a | b).test(3));
    EXPECT_FALSE((a | b).test(0));
}

TEST(Bitvector, ToStringMsbFirst)
{
    Bitvector bv(4, false);
    bv.set(3, true);
    EXPECT_EQ(bv.toString(), "1000");
}

TEST(Bitvector, ShiftEquivalenceWithReference)
{
    // Property: multi-word shift matches a naive per-bit shift.
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const int width = 1 + static_cast<int>(rng.nextBelow(200));
        Bitvector bv(width, false);
        std::vector<bool> ref(width, false);
        for (int i = 0; i < width; ++i) {
            const bool bit = rng.nextBool(0.5);
            bv.set(i, bit);
            ref[i] = bit;
        }
        bv.shiftLeftOne();
        for (int i = width - 1; i >= 1; --i)
            ref[i] = ref[i - 1];
        ref[0] = false;
        for (int i = 0; i < width; ++i)
            EXPECT_EQ(bv.test(i), ref[i]) << "width " << width << " bit " << i;
    }
}

TEST(Dna, CodeRoundTrip)
{
    EXPECT_EQ(baseToCode('A'), 0);
    EXPECT_EQ(baseToCode('C'), 1);
    EXPECT_EQ(baseToCode('G'), 2);
    EXPECT_EQ(baseToCode('T'), 3);
    EXPECT_EQ(baseToCode('a'), 0);
    EXPECT_EQ(baseToCode('N'), kInvalidBaseCode);
    for (uint8_t code = 0; code < 4; ++code)
        EXPECT_EQ(baseToCode(codeToBase(code)), code);
}

TEST(Dna, ReverseComplement)
{
    EXPECT_EQ(reverseComplement("ACGT"), "ACGT");
    EXPECT_EQ(reverseComplement("AAAC"), "GTTT");
    EXPECT_EQ(reverseComplement(reverseComplement("GATTACA")), "GATTACA");
}

TEST(Dna, NormalizeReplacesAmbiguous)
{
    EXPECT_EQ(normalizeDna("acgtN"), "ACGTA");
    EXPECT_TRUE(isValidDna("ACGT"));
    EXPECT_FALSE(isValidDna("ACGN"));
}

TEST(PackedSeq, RoundTrip)
{
    const std::string seq = "ACGTACGTTTGGCCAA";
    PackedSeq packed(seq);
    EXPECT_EQ(packed.size(), seq.size());
    EXPECT_EQ(packed.toString(), seq);
    EXPECT_EQ(packed.substr(4, 4), "ACGT");
    EXPECT_EQ(packed.baseAt(8), 'T');
}

TEST(PackedSeq, LongRandomRoundTrip)
{
    Rng rng(11);
    std::string seq;
    for (int i = 0; i < 1000; ++i)
        seq.push_back(rng.nextBase());
    PackedSeq packed(seq);
    EXPECT_EQ(packed.toString(), seq);
}

TEST(PackedSeq, RejectsInvalidBase)
{
    PackedSeq packed;
    EXPECT_THROW(packed.pushBase('N'), InputError);
}

TEST(TableStorage, OwnedAndBorrowedReadIdentically)
{
    const std::vector<uint32_t> values = {5, 7, 11, 13};
    util::TableStorage<uint32_t> owned(values);
    const auto borrowed = util::TableStorage<uint32_t>::borrow(
        {values.data(), values.size()});

    EXPECT_FALSE(owned.borrowed());
    EXPECT_TRUE(borrowed.borrowed());
    EXPECT_TRUE(owned == borrowed);
    ASSERT_EQ(borrowed.size(), values.size());
    EXPECT_EQ(borrowed[2], 11u);
    EXPECT_EQ(borrowed.data(), values.data()); // zero-copy
    EXPECT_EQ(borrowed.bytes(), values.size() * sizeof(uint32_t));
    uint64_t sum = 0;
    for (const uint32_t v : borrowed)
        sum += v;
    EXPECT_EQ(sum, 36u);
}

TEST(TableStorage, MutationDetachesBorrowedCopyOnWrite)
{
    const std::vector<uint32_t> values = {1, 2, 3};
    auto table = util::TableStorage<uint32_t>::borrow(
        {values.data(), values.size()});
    table.vec().push_back(4);
    EXPECT_FALSE(table.borrowed());
    ASSERT_EQ(table.size(), 4u);
    EXPECT_EQ(table[3], 4u);
    EXPECT_EQ(values.size(), 3u); // the borrowed source is untouched
    EXPECT_NE(table.data(), values.data());
}

TEST(Hash, IsInvertible)
{
    // The minimizer hash must be a bijection so distinct k-mers never
    // collide in the index (a load-bearing property of Fig. 6).
    Rng rng(3);
    for (const int bits : {8, 20, 30, 40, 64}) {
        const uint64_t mask =
            bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
        for (int trial = 0; trial < 200; ++trial) {
            const uint64_t key = rng.nextU64() & mask;
            EXPECT_EQ(hash64Inverse(hash64(key, mask), mask), key)
                << "bits " << bits;
        }
    }
}

TEST(Hash, SmallDomainIsPermutation)
{
    const uint64_t mask = (1 << 10) - 1;
    std::vector<bool> seen(1 << 10, false);
    for (uint64_t key = 0; key <= mask; ++key) {
        const uint64_t hashed = hash64(key, mask);
        ASSERT_LE(hashed, mask);
        EXPECT_FALSE(seen[hashed]) << "collision at " << key;
        seen[hashed] = true;
    }
}

TEST(Cigar, PushCoalesces)
{
    Cigar cigar;
    cigar.push(EditOp::Match, 3);
    cigar.push(EditOp::Match, 2);
    cigar.push(EditOp::Substitution);
    EXPECT_EQ(cigar.toString(), "5=1X");
    EXPECT_EQ(cigar.editDistance(), 1u);
    EXPECT_EQ(cigar.readLength(), 6u);
    EXPECT_EQ(cigar.refLength(), 6u);
}

TEST(Cigar, FromStringRoundTrip)
{
    const std::string text = "12=1X3D2I7=";
    EXPECT_EQ(Cigar::fromString(text).toString(), text);
    EXPECT_THROW(Cigar::fromString("=="), InputError);
    EXPECT_THROW(Cigar::fromString("3"), InputError);
    EXPECT_THROW(Cigar::fromString("3Q"), InputError);
}

TEST(Cigar, ValidateAgainstSequences)
{
    // read ACGT vs ref ACT: match ACx, delete G? Construct explicitly:
    // read  A C G T
    // ref   A C T
    // 2= 1I (G) 1= (T vs T)? ref consumed: A C T.
    Cigar cigar = Cigar::fromString("2=1I1=");
    EXPECT_TRUE(cigar.validate("ACGT", "ACT"));
    EXPECT_FALSE(cigar.validate("ACGT", "ACG"));
    // Substitution must really mismatch.
    EXPECT_FALSE(Cigar::fromString("1X3=").validate("ACGT", "ACGT"));
    EXPECT_TRUE(Cigar::fromString("4=").validate("ACGT", "ACGT"));
    // Lengths must be consumed exactly.
    EXPECT_FALSE(Cigar::fromString("3=").validate("ACGT", "ACGT"));
}

TEST(Cigar, ReverseAndAppend)
{
    Cigar a = Cigar::fromString("2=1X");
    Cigar b = Cigar::fromString("1X3=");
    a.append(b);
    EXPECT_EQ(a.toString(), "2=2X3=");
    a.reverse();
    EXPECT_EQ(a.toString(), "3=2X2=");
}

TEST(Rng, DeterministicAndInRange)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        const double real = rng.nextDouble();
        EXPECT_GE(real, 0.0);
        EXPECT_LT(real, 1.0);
        const int64_t ranged = rng.nextInRange(-3, 7);
        EXPECT_GE(ranged, -3);
        EXPECT_LE(ranged, 7);
    }
}

TEST(Stats, MeanGeomeanPercentile)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

} // namespace
} // namespace segram
