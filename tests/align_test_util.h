/**
 * @file
 * Shared fuzz-case generators for the aligner test harnesses
 * (test_align_property.cc and test_differential.cc): random DAGs,
 * path sampling, and edit-counting mutation. One implementation so
 * both harnesses generate identical case families.
 */

#ifndef SEGRAM_TESTS_ALIGN_TEST_UTIL_H
#define SEGRAM_TESTS_ALIGN_TEST_UTIL_H

#include <algorithm>
#include <string>
#include <vector>

#include "src/graph/linearize.h"
#include "src/util/rng.h"

namespace segram::align
{

/** Random DAG with chain edges, random extra hops and chain breaks. */
inline graph::LinearizedGraph
randomDag(Rng &rng, int size, double hop_prob, double break_prob)
{
    graph::LinearizedGraph out;
    for (int i = 0; i < size; ++i) {
        std::vector<uint16_t> deltas;
        if (i + 1 < size && !rng.nextBool(break_prob))
            deltas.push_back(1);
        if (i + 2 < size && rng.nextBool(hop_prob)) {
            const auto max_delta =
                std::min<uint64_t>(10, size - 1 - i);
            const auto delta =
                static_cast<uint16_t>(2 + rng.nextBelow(max_delta - 1));
            if (delta >= 2)
                deltas.push_back(delta);
        }
        out.pushChar(rng.nextBase(), std::move(deltas));
    }
    out.finalize();
    return out;
}

/**
 * Samples a path string through the DAG starting at a random node
 * (restricted to [0, max_start] when max_start >= 0).
 */
inline std::string
samplePath(const graph::LinearizedGraph &text, Rng &rng, int max_len,
           int max_start = -1)
{
    std::string out;
    const uint64_t bound = max_start < 0
                               ? static_cast<uint64_t>(text.size())
                               : static_cast<uint64_t>(max_start) + 1;
    int pos = static_cast<int>(rng.nextBelow(bound));
    while (static_cast<int>(out.size()) < max_len) {
        out.push_back("ACGT"[text.code(pos)]);
        const auto deltas = text.successorDeltas(pos);
        if (deltas.empty())
            break;
        pos += deltas[rng.nextBelow(deltas.size())];
    }
    return out;
}

/** Applies random edits to a string, counting them into @p edits. */
inline std::string
mutate(const std::string &seq, Rng &rng, double rate, int *edits)
{
    std::string out;
    for (const char base : seq) {
        if (rng.nextBool(rate)) {
            ++*edits;
            const double which = rng.nextDouble();
            if (which < 0.4) {
                char alt = rng.nextBase();
                while (alt == base)
                    alt = rng.nextBase();
                out.push_back(alt); // substitution
            } else if (which < 0.7) {
                out.push_back(rng.nextBase());
                out.push_back(base); // insertion
            } // else deletion: skip the base
        } else {
            out.push_back(base);
        }
    }
    if (out.empty())
        out.push_back('A');
    return out;
}

/** The ACGT string of the graph characters at @p positions. */
inline std::string
consumedPath(const graph::LinearizedGraph &text,
             const std::vector<int> &positions)
{
    std::string out;
    for (const int pos : positions)
        out.push_back("ACGT"[text.code(pos)]);
    return out;
}

} // namespace segram::align

#endif // SEGRAM_TESTS_ALIGN_TEST_UTIL_H
