/**
 * @file
 * Tests for the three-level hash-table index (Fig. 6): query
 * correctness against a naive map, footprint accounting (Fig. 7
 * series), and the frequency threshold (top 0.02% discard rule).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/graph/graph_builder.h"
#include "src/index/minimizer_index.h"
#include "src/seed/minimizer.h"
#include "src/sim/genome_sim.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace segram::index
{
namespace
{

graph::GenomeGraph
randomGraph(uint64_t len, uint64_t seed, uint32_t max_node_len = 200)
{
    Rng rng(seed);
    const std::string reference = sim::randomSequence(len, rng);
    graph::BuildOptions options;
    options.maxNodeLen = max_node_len;
    return graph::buildGraph(reference, {}, options);
}

/** Naive reference index: every node k-mer minimizer into a multimap. */
std::map<uint64_t, std::vector<SeedLocation>>
naiveIndex(const graph::GenomeGraph &graph,
           const seed::SketchConfig &sketch)
{
    std::map<uint64_t, std::vector<SeedLocation>> naive;
    for (graph::NodeId id = 0; id < graph.numNodes(); ++id) {
        for (const auto &m :
             seed::computeMinimizers(graph.nodeSeq(id), sketch)) {
            naive[m.hash].push_back({id, m.pos});
        }
    }
    return naive;
}

TEST(MinimizerIndex, MatchesNaiveIndex)
{
    const auto graph = randomGraph(20'000, 1);
    IndexConfig config;
    config.sketch = {11, 5};
    config.bucketBits = 10;
    const auto index = MinimizerIndex::build(graph, config);
    const auto naive = naiveIndex(graph, config.sketch);

    uint64_t total_locations = 0;
    for (const auto &[hash, locations] : naive) {
        EXPECT_EQ(index.frequency(hash), locations.size());
        const auto span = index.locations(hash);
        ASSERT_EQ(span.size(), locations.size());
        // Index stores locations sorted; compare as sets.
        std::vector<SeedLocation> sorted = locations;
        std::sort(sorted.begin(), sorted.end());
        for (size_t i = 0; i < sorted.size(); ++i)
            EXPECT_EQ(span[i], sorted[i]);
        total_locations += locations.size();
    }
    EXPECT_EQ(index.stats().numDistinctMinimizers, naive.size());
    EXPECT_EQ(index.stats().numLocations, total_locations);
}

TEST(MinimizerIndex, AbsentMinimizerHasZeroFrequency)
{
    const auto graph = randomGraph(5'000, 2);
    IndexConfig config;
    config.sketch = {15, 10};
    config.bucketBits = 8;
    const auto index = MinimizerIndex::build(graph, config);
    // A hash outside the 2k-bit domain cannot be present.
    const uint64_t absent = ~uint64_t{0};
    EXPECT_EQ(index.frequency(absent), 0u);
    EXPECT_TRUE(index.locations(absent).empty());
}

TEST(MinimizerIndex, FootprintFollowsFig6ByteWidths)
{
    const auto graph = randomGraph(10'000, 3);
    IndexConfig config;
    config.sketch = {13, 8};
    config.bucketBits = 12;
    const auto stats = MinimizerIndex::build(graph, config).stats();
    EXPECT_EQ(stats.firstLevelBytes, (uint64_t{1} << 12) * 4);
    EXPECT_EQ(stats.secondLevelBytes, stats.numDistinctMinimizers * 12);
    EXPECT_EQ(stats.thirdLevelBytes, stats.numLocations * 8);
    EXPECT_EQ(stats.totalBytes(), stats.firstLevelBytes +
                                      stats.secondLevelBytes +
                                      stats.thirdLevelBytes);
}

TEST(MinimizerIndex, Fig7TradeoffMonotonicity)
{
    // Fewer buckets -> smaller level 1 but more minimizers per bucket;
    // levels 2/3 are invariant. This is the Fig. 7 shape.
    const auto graph = randomGraph(30'000, 4);
    IndexConfig config;
    config.sketch = {13, 8};
    IndexStats prev_stats;
    uint64_t prev_max = 0;
    bool first = true;
    for (const int bits : {6, 8, 10, 12, 14}) {
        config.bucketBits = bits;
        const auto stats = statsForBucketBits(graph, config);
        if (!first) {
            EXPECT_GT(stats.firstLevelBytes, prev_stats.firstLevelBytes);
            EXPECT_LE(stats.maxMinimizersPerBucket, prev_max);
            EXPECT_EQ(stats.secondLevelBytes, prev_stats.secondLevelBytes);
            EXPECT_EQ(stats.thirdLevelBytes, prev_stats.thirdLevelBytes);
        }
        prev_stats = stats;
        prev_max = stats.maxMinimizersPerBucket;
        first = false;
    }
}

TEST(MinimizerIndex, FrequencyThresholdDiscardsTopFraction)
{
    // Plant a heavy repeat so some minimizers are very frequent.
    Rng rng(5);
    sim::GenomeConfig genome_config;
    genome_config.length = 50'000;
    genome_config.repeatFraction = 0.2;
    genome_config.repeatMotifLen = 300;
    genome_config.repeatMotifCount = 2;
    const std::string reference = sim::simulateGenome(genome_config, rng);
    graph::BuildOptions options;
    options.maxNodeLen = 500;
    const auto graph = graph::buildGraph(reference, {}, options);

    IndexConfig config;
    config.sketch = {13, 8};
    config.bucketBits = 12;
    config.discardTopFraction = 0.01; // exaggerate for a small genome
    const auto index = MinimizerIndex::build(graph, config);
    const uint32_t threshold = index.frequencyThreshold();
    EXPECT_GE(threshold, 1u);
    // At most 1% of distinct minimizers may exceed the threshold.
    const auto naive = naiveIndex(graph, config.sketch);
    uint64_t above = 0;
    for (const auto &[hash, locations] : naive) {
        if (locations.size() > threshold)
            ++above;
    }
    EXPECT_LE(above, naive.size() / 100 + 1);
}

TEST(MinimizerIndex, RejectsBadConfig)
{
    const auto graph = randomGraph(1'000, 6);
    IndexConfig config;
    config.bucketBits = 0;
    EXPECT_THROW(MinimizerIndex::build(graph, config), InputError);
    config.bucketBits = 33;
    EXPECT_THROW(MinimizerIndex::build(graph, config), InputError);
    config.bucketBits = 8;
    config.discardTopFraction = 1.5;
    EXPECT_THROW(MinimizerIndex::build(graph, config), InputError);
}

} // namespace
} // namespace segram::index
