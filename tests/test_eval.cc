/**
 * @file
 * Unit tests for the accuracy-evaluation subsystem: truth sidecar
 * round-trip, PAF parsing round-trip, the correctness predicate
 * (threshold and strand semantics), per-profile breakdowns, and the
 * end-to-end simulate -> map -> evaluate loop in-process.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/core/segram.h"
#include "src/eval/accuracy.h"
#include "src/io/paf.h"
#include "src/sim/dataset.h"
#include "src/util/check.h"

namespace
{

using namespace segram;
using eval::AccuracyEvaluator;
using eval::EvalConfig;
using eval::TruthRecord;

class EvalFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("segram_eval_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const char *name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TruthRecord
makeTruth(const std::string &name, uint64_t start,
          const std::string &profile, char strand = '+',
          uint32_t read_len = 100)
{
    TruthRecord record;
    record.readName = name;
    record.chromosome = "chr1";
    record.donorStart = start;
    record.truthLinearStart = start;
    record.strand = strand;
    record.readLen = read_len;
    record.plantedErrors = 3;
    record.profile = profile;
    return record;
}

io::PafRecord
makeMapping(const std::string &name, uint64_t target_start,
            char strand = '+')
{
    io::PafRecord record;
    record.queryName = name;
    record.queryLen = 100;
    record.strand = strand;
    record.targetName = "chr1";
    record.targetLen = 100'000;
    record.targetStart = target_start;
    record.targetEnd = target_start + 100;
    return record;
}

TEST_F(EvalFileTest, TruthFileRoundTrips)
{
    std::vector<TruthRecord> truth = {
        makeTruth("read0", 1234, "illumina-1%"),
        makeTruth("read1", 98765, "pacbio-5%", '-', 10'000),
    };
    truth[1].plantedErrors = 512;
    eval::writeTruthFile(path("t.truth.tsv"), truth);
    const auto loaded = eval::readTruthFile(path("t.truth.tsv"));
    ASSERT_EQ(loaded.size(), truth.size());
    EXPECT_EQ(loaded[0], truth[0]);
    EXPECT_EQ(loaded[1], truth[1]);
}

TEST_F(EvalFileTest, TruthFileRejectsMalformedRows)
{
    {
        std::ofstream out(path("bad.tsv"));
        out << "# header\nname\tchr1\t1\t2\t+\t100\n"; // 6 fields of 8
    }
    EXPECT_THROW(eval::readTruthFile(path("bad.tsv")), InputError);
    {
        std::ofstream out(path("bad2.tsv"));
        // non-numeric coordinate
        out << "name\tchr1\t1\tx\t+\t100\t0\tp\n";
    }
    EXPECT_THROW(eval::readTruthFile(path("bad2.tsv")), InputError);
    {
        std::ofstream out(path("bad3.tsv"));
        out << "name\tchr1\t1\t2\t*\t100\t0\tp\n"; // bad strand
    }
    EXPECT_THROW(eval::readTruthFile(path("bad3.tsv")), InputError);
    EXPECT_THROW(eval::readTruthFile(path("absent.tsv")), InputError);
}

TEST_F(EvalFileTest, PafFileRoundTrips)
{
    Cigar cigar = Cigar::fromString("40=1X9=2D50=");
    const auto written = io::makePafRecord("readA", 100, '-', "chr2",
                                           5'000'000, 777, cigar);
    {
        std::ofstream out(path("r.paf"));
        io::writePaf(out, written);
        io::writePaf(out, io::makePafRecord("readB", 80, '+', "chr1",
                                            1'000, 12, Cigar{}));
    }
    const auto records = io::readPafFile(path("r.paf"));
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].queryName, "readA");
    EXPECT_EQ(records[0].strand, '-');
    EXPECT_EQ(records[0].targetName, "chr2");
    EXPECT_EQ(records[0].targetStart, 777u);
    EXPECT_EQ(records[0].targetEnd, written.targetEnd);
    EXPECT_EQ(records[0].matches, written.matches);
    EXPECT_EQ(records[0].cigar, cigar);
    EXPECT_EQ(records[1].queryName, "readB");
    EXPECT_TRUE(records[1].cigar.empty());
}

TEST_F(EvalFileTest, PafParserRejectsGarbage)
{
    EXPECT_THROW(io::parsePafLine("only\tthree\tfields"), InputError);
    EXPECT_THROW(
        io::parsePafLine("q\tx\t0\t5\t+\tt\t10\t0\t5\t5\t5\t60"),
        InputError); // non-numeric query length
    EXPECT_THROW(
        io::parsePafLine("q\t5\t0\t5\t?\tt\t10\t0\t5\t5\t5\t60"),
        InputError); // bad strand
    EXPECT_THROW(io::readPafFile(path("absent.paf")), InputError);
}

TEST(PafParser, RejectsInternallyInconsistentRecords)
{
    // The anchor: this exact record is consistent and parses.
    EXPECT_NO_THROW(
        io::parsePafLine("q\t10\t0\t10\t+\tt\t50\t5\t15\t8\t10\t60"));
    // queryStart > queryEnd — a swapped pair could still land inside
    // the eval correctness window and silently skew the report.
    EXPECT_THROW(
        io::parsePafLine("q\t10\t10\t0\t+\tt\t50\t5\t15\t8\t10\t60"),
        InputError);
    // queryEnd > queryLen.
    EXPECT_THROW(
        io::parsePafLine("q\t10\t0\t11\t+\tt\t50\t5\t15\t8\t10\t60"),
        InputError);
    // targetStart > targetEnd.
    EXPECT_THROW(
        io::parsePafLine("q\t10\t0\t10\t+\tt\t50\t15\t5\t8\t10\t60"),
        InputError);
    // targetEnd > targetLen.
    EXPECT_THROW(
        io::parsePafLine("q\t10\t0\t10\t+\tt\t50\t5\t51\t8\t10\t60"),
        InputError);
    // matches > alignmentLen.
    EXPECT_THROW(
        io::parsePafLine("q\t10\t0\t10\t+\tt\t50\t5\t15\t11\t10\t60"),
        InputError);
}

TEST(AccuracyEvaluator, ThresholdBoundsTheCorrectnessWindow)
{
    EvalConfig config;
    config.distanceThreshold = 10;
    const AccuracyEvaluator evaluator({makeTruth("r", 1000, "p")},
                                      config);
    const auto &truth = makeTruth("r", 1000, "p");
    EXPECT_TRUE(evaluator.isCorrect(truth, makeMapping("r", 1000)));
    EXPECT_TRUE(evaluator.isCorrect(truth, makeMapping("r", 990)));
    EXPECT_TRUE(evaluator.isCorrect(truth, makeMapping("r", 1010)));
    EXPECT_FALSE(evaluator.isCorrect(truth, makeMapping("r", 989)));
    EXPECT_FALSE(evaluator.isCorrect(truth, makeMapping("r", 1011)));
}

TEST(AccuracyEvaluator, WrongChromosomeIsWrongEvenAtTheRightOffset)
{
    const auto truth = makeTruth("r", 1000, "p"); // planted on chr1
    const AccuracyEvaluator evaluator({truth});
    io::PafRecord wrong_chromosome = makeMapping("r", 1000);
    wrong_chromosome.targetName = "chr2";
    EXPECT_FALSE(evaluator.isCorrect(truth, wrong_chromosome));
    EXPECT_TRUE(evaluator.isCorrect(truth, makeMapping("r", 1000)));

    // An empty truth chromosome (single anonymous reference) skips
    // the check.
    auto anonymous = truth;
    anonymous.chromosome.clear();
    const AccuracyEvaluator lax({anonymous});
    EXPECT_TRUE(lax.isCorrect(anonymous, wrong_chromosome));
}

TEST(AccuracyEvaluator, StrandMismatchIsWrongUnlessDisabled)
{
    const auto truth_minus = makeTruth("r", 500, "p", '-');
    EvalConfig strict;
    const AccuracyEvaluator evaluator({truth_minus}, strict);
    EXPECT_TRUE(
        evaluator.isCorrect(truth_minus, makeMapping("r", 500, '-')));
    EXPECT_FALSE(
        evaluator.isCorrect(truth_minus, makeMapping("r", 500, '+')));

    EvalConfig lax;
    lax.requireStrandMatch = false;
    const AccuracyEvaluator lax_evaluator({truth_minus}, lax);
    EXPECT_TRUE(
        lax_evaluator.isCorrect(truth_minus, makeMapping("r", 500, '+')));
}

TEST(AccuracyEvaluator, PerProfileBreakdownAndUnknownReads)
{
    std::vector<TruthRecord> truth = {
        makeTruth("i0", 100, "illumina-1%"),
        makeTruth("i1", 200, "illumina-1%"),
        makeTruth("p0", 300, "pacbio-5%"),
    };
    const AccuracyEvaluator evaluator(std::move(truth));
    const std::vector<io::PafRecord> mapped = {
        makeMapping("i0", 100),    // correct
        makeMapping("i1", 90'000), // mapped but wrong locus
        makeMapping("ghost", 1),   // not in the truth set
    };
    const auto report = evaluator.evaluate("test", mapped);
    EXPECT_EQ(report.overall.truthReads, 3u);
    EXPECT_EQ(report.overall.mappedReads, 2u);
    EXPECT_EQ(report.overall.correctReads, 1u);
    EXPECT_EQ(report.overall.recordsTotal, 3u);
    EXPECT_EQ(report.overall.recordsCorrect, 1u);
    EXPECT_EQ(report.unknownRecords, 1u);
    EXPECT_DOUBLE_EQ(report.overall.sensitivity(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(report.overall.precision(), 1.0 / 3.0);

    ASSERT_EQ(report.perProfile.size(), 2u);
    const auto &illumina = report.perProfile.at("illumina-1%");
    EXPECT_EQ(illumina.truthReads, 2u);
    EXPECT_EQ(illumina.mappedReads, 2u);
    EXPECT_EQ(illumina.correctReads, 1u);
    const auto &pacbio = report.perProfile.at("pacbio-5%");
    EXPECT_EQ(pacbio.truthReads, 1u);
    EXPECT_EQ(pacbio.mappedReads, 0u);
    EXPECT_EQ(pacbio.correctReads, 0u);
    EXPECT_DOUBLE_EQ(pacbio.sensitivity(), 0.0);
}

TEST(AccuracyEvaluator, DuplicateSecondaryHitsDoNotInflateSensitivity)
{
    const AccuracyEvaluator evaluator({makeTruth("r", 1000, "p")});
    const std::vector<io::PafRecord> mapped = {
        makeMapping("r", 50'000), // wrong secondary
        makeMapping("r", 1000),   // correct primary
    };
    const auto report = evaluator.evaluate("test", mapped);
    EXPECT_EQ(report.overall.correctReads, 1u);
    EXPECT_EQ(report.overall.mappedReads, 1u);
    EXPECT_EQ(report.overall.recordsTotal, 2u);
    EXPECT_EQ(report.overall.recordsCorrect, 1u);
    EXPECT_DOUBLE_EQ(report.overall.sensitivity(), 1.0);
    EXPECT_DOUBLE_EQ(report.overall.precision(), 0.5);
}

TEST(AccuracyEvaluator, RejectsDuplicateTruthNames)
{
    EXPECT_THROW(AccuracyEvaluator({makeTruth("dup", 1, "p"),
                                    makeTruth("dup", 2, "p")}),
                 InputError);
}

TEST(AccuracyEvaluator, ReportFormattersCoverEveryProfile)
{
    const AccuracyEvaluator evaluator({makeTruth("a", 10, "px"),
                                       makeTruth("b", 20, "py")});
    const auto report = evaluator.evaluate(
        "mapperX", std::vector<io::PafRecord>{makeMapping("a", 10)});
    const std::string text = eval::formatReport(report);
    EXPECT_NE(text.find("mapperX"), std::string::npos);
    EXPECT_NE(text.find("px"), std::string::npos);
    EXPECT_NE(text.find("py"), std::string::npos);
    std::string tsv;
    eval::appendReportTsv(tsv, report);
    EXPECT_NE(tsv.find("mapperX\tall\t2\t1\t1\t0.5000\t1.0000"),
              std::string::npos);
}

TEST(AccuracyEvaluator, EndToEndSimulateMapEvaluate)
{
    // The whole loop in-process: plant reads (forward and reverse
    // strand), map them with the real pipeline, and check the
    // evaluator confirms near-perfect placement at 1% error.
    sim::DatasetConfig dataset_config;
    dataset_config.genome.length = 40'000;
    dataset_config.index.bucketBits = 12;
    dataset_config.seed = 77;
    const auto dataset = sim::makeDataset(dataset_config);

    Rng rng(78);
    sim::ReadSimConfig read_config{150, 50,
                                   sim::ErrorProfile::illumina(0.01)};
    read_config.revCompProbability = 0.4;
    const auto reads = sim::simulateReads(dataset.donor, read_config, rng);

    core::SegramConfig config;
    config.minseed.errorRate = 0.05;
    config.tryReverseComplement = true;
    const core::SegramMapper mapper(dataset.graph, dataset.index, config);

    std::vector<TruthRecord> truth;
    std::vector<io::PafRecord> mapped;
    const std::string profile = sim::profileLabel(read_config.errors);
    EXPECT_EQ(profile, "illumina-1%");
    int planted_reverse = 0;
    for (size_t i = 0; i < reads.size(); ++i) {
        const std::string name = "read" + std::to_string(i);
        truth.push_back({name, "chr1", reads[i].donorStart,
                         reads[i].truthLinearStart,
                         reads[i].reverseComplemented ? '-' : '+',
                         static_cast<uint32_t>(reads[i].seq.size()),
                         reads[i].plantedErrors, profile});
        planted_reverse += reads[i].reverseComplemented;
        const auto result = mapper.mapRead(reads[i].seq);
        if (!result.mapped)
            continue;
        mapped.push_back(io::makePafRecord(
            name, reads[i].seq.size(),
            result.reverseComplemented ? '-' : '+', "chr1",
            dataset.graph.totalSeqLen(), result.linearStart,
            result.cigar));
    }
    EXPECT_GT(planted_reverse, 5); // both strands actually exercised

    const AccuracyEvaluator evaluator(std::move(truth));
    const auto report = evaluator.evaluate("segram", mapped);
    EXPECT_EQ(report.overall.truthReads, 50u);
    EXPECT_GE(report.overall.sensitivity(), 0.95);
    EXPECT_GE(report.overall.precision(), 0.95);
}

} // namespace
