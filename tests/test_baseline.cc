/**
 * @file
 * Tests for the baseline module: DP string aligners, the DP graph
 * oracle (against brute force on tiny cases), chaining, and the
 * GraphAligner-like / vg-like software mappers.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/seed/chaining.h"
#include "src/baseline/dp_s2g.h"
#include "src/baseline/dp_s2s.h"
#include "src/baseline/mappers.h"
#include "src/graph/graph_builder.h"
#include "src/graph/linearize.h"
#include "src/index/minimizer_index.h"
#include "src/sim/genome_sim.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace segram::baseline
{
namespace
{

TEST(DpS2S, GlobalKnownCases)
{
    EXPECT_EQ(nwGlobal("ACGT", "ACGT").editDistance, 0);
    EXPECT_EQ(nwGlobal("ACGT", "ACCT").editDistance, 1);
    EXPECT_EQ(nwGlobal("ACGT", "AGT").editDistance, 1);
    EXPECT_EQ(nwGlobal("ACGT", "AACGT").editDistance, 1);
    EXPECT_EQ(nwGlobal("AAAA", "TTTT").editDistance, 4);
    // Classic: kitten/sitting equivalent in DNA space.
    EXPECT_EQ(nwGlobal("ACGTACGT", "TGCATGCA").editDistance, 6);
}

TEST(DpS2S, GlobalCigarValidates)
{
    const auto result = nwGlobal("ACGTACGT", "ACTACGGT");
    EXPECT_TRUE(result.cigar.validate("ACTACGGT", "ACGTACGT"));
    EXPECT_EQ(result.cigar.editDistance(),
              static_cast<uint64_t>(result.editDistance));
}

TEST(DpS2S, SemiGlobalFreeEnds)
{
    // Pattern embedded in the middle: distance 0.
    EXPECT_EQ(semiGlobal("TTTACGTTTT", "ACGT").editDistance, 0);
    // One substitution, regardless of flanks.
    EXPECT_EQ(semiGlobal("TTTACGTTTT", "ACCT").editDistance, 1);
}

TEST(DpS2S, SemiGlobalCigarValidatesAgainstWindow)
{
    const std::string text = "TTTACGTACGTTT";
    const std::string read = "CGTACG";
    const auto result = semiGlobal(text, read);
    const std::string window = text.substr(
        result.textStart, result.textEnd - result.textStart);
    EXPECT_TRUE(result.cigar.validate(read, window));
}

TEST(DpS2S, BandedConvergesToExact)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const std::string text = sim::randomSequence(60, rng);
        const std::string read =
            text.substr(5, 30) + sim::randomSequence(3, rng);
        const int exact = semiGlobal(text, read, false).editDistance;
        const int banded = bandedSemiGlobalDistance(text, read, 40);
        EXPECT_EQ(banded, exact);
        // Tighter bands can only raise the distance.
        EXPECT_GE(bandedSemiGlobalDistance(text, read, 1), exact);
    }
}

TEST(DpS2G, ChainEqualsStringDp)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const std::string text = sim::randomSequence(50, rng);
        const std::string read = sim::randomSequence(20, rng);
        const auto g = graph::buildGraph(text, {});
        const auto lin = graph::linearizeWhole(g);
        EXPECT_EQ(dpGraphDistance(lin, read).editDistance,
                  semiGlobal(text, read, false).editDistance);
        const auto full = dpGraphAlign(lin, read);
        EXPECT_EQ(full.editDistance,
                  semiGlobal(text, read, false).editDistance);
        EXPECT_EQ(full.cigar.editDistance(),
                  static_cast<uint64_t>(full.editDistance));
        EXPECT_EQ(full.cigar.readLength(), read.size());
    }
}

TEST(DpS2G, AltPathBeatsLinear)
{
    // Read carries the ALT allele: graph DP finds 0, string DP finds 1.
    const auto g = graph::buildGraph("ACGTACGT", {{3, "T", "G"}});
    const auto lin = graph::linearizeWhole(g);
    EXPECT_EQ(dpGraphDistance(lin, "ACGGACGT").editDistance, 0);
    EXPECT_EQ(semiGlobal("ACGTACGT", "ACGGACGT", false).editDistance, 1);
}

TEST(DpS2G, DistanceAndAlignAgree)
{
    Rng rng(7);
    for (int trial = 0; trial < 15; ++trial) {
        const std::string reference = sim::randomSequence(80, rng);
        std::vector<graph::Variant> variants;
        for (uint64_t pos = 10; pos + 10 < reference.size(); pos += 25) {
            char alt = rng.nextBase();
            while (alt == reference[pos])
                alt = rng.nextBase();
            variants.push_back({pos, std::string(1, reference[pos]),
                                std::string(1, alt)});
        }
        const auto g = graph::buildGraph(reference, variants);
        const auto lin = graph::linearizeWhole(g);
        const std::string read = sim::randomSequence(25, rng);
        EXPECT_EQ(dpGraphDistance(lin, read).editDistance,
                  dpGraphAlign(lin, read).editDistance);
    }
}

TEST(Chaining, GroupsCoDiagonalSeeds)
{
    std::vector<SeedHit> hits = {
        {1000, 10}, {1050, 60}, {1100, 110}, // chain A, diagonal 990
        {5000, 10}, {5040, 50},              // chain B, diagonal 4990
        {9000, 20},                          // singleton
    };
    const auto chains = chainSeeds(hits);
    ASSERT_EQ(chains.size(), 3u);
    EXPECT_EQ(chains[0].score, 3);
    EXPECT_EQ(chains[0].refStart(), 1000u);
    EXPECT_EQ(chains[1].score, 2);
    EXPECT_EQ(chains[2].score, 1);
}

TEST(Chaining, RespectsGapAndBand)
{
    ChainConfig config;
    config.maxGap = 100;
    // Same diagonal but a 10 kb gap: two chains.
    const auto chains = chainSeeds({{1000, 10}, {11000, 10}}, config);
    EXPECT_EQ(chains.size(), 2u);
    // Diagonal drift within the band chains; beyond it splits.
    config.diagonalBand = 4;
    EXPECT_EQ(chainSeeds({{1000, 10}, {1003, 10}}, config).size(), 1u);
    EXPECT_EQ(chainSeeds({{1000, 10}, {1010, 10}}, config).size(), 2u);
}

TEST(Chaining, EmptyInput)
{
    EXPECT_TRUE(chainSeeds({}).empty());
}

class MapperTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(41);
        reference_ = sim::randomSequence(30'000, rng);
        graph::BuildOptions options;
        options.maxNodeLen = 256;
        graph_ = graph::buildGraph(reference_, {}, options);
        index::IndexConfig config;
        config.sketch = {13, 8};
        config.bucketBits = 13;
        index_ = index::MinimizerIndex::build(graph_, config);
    }

    std::string reference_;
    graph::GenomeGraph graph_;
    index::MinimizerIndex index_;
};

TEST_F(MapperTest, GraphAlignerLikeMapsExactReads)
{
    BaselineConfig config;
    config.errorRate = 0.05;
    const GraphAlignerLike mapper(graph_, index_, config);
    Rng rng(43);
    int correct = 0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
        const uint64_t start = rng.nextBelow(reference_.size() - 700);
        const std::string read = reference_.substr(start, 500);
        BaselineStats stats;
        const auto result = mapper.map(read, &stats);
        ASSERT_TRUE(result.mapped);
        EXPECT_EQ(result.editDistance, 0);
        EXPECT_GT(stats.rawSeeds, 0u);
        EXPECT_GE(stats.rawSeeds, stats.seedsExtended);
        correct += result.linearStart <= start + 8 &&
                   start <= result.linearStart + 8;
    }
    EXPECT_EQ(correct, trials);
}

TEST_F(MapperTest, VgLikeMapsExactReads)
{
    BaselineConfig config;
    config.errorRate = 0.05;
    const VgLike mapper(graph_, index_, config);
    Rng rng(47);
    for (int trial = 0; trial < 5; ++trial) {
        const uint64_t start = rng.nextBelow(reference_.size() - 700);
        const std::string read = reference_.substr(start, 500);
        const auto result = mapper.map(read);
        ASSERT_TRUE(result.mapped);
        EXPECT_EQ(result.editDistance, 0);
    }
}

TEST_F(MapperTest, ChainingCollapsesSeedCount)
{
    // The Section 11.4 contrast: baselines extend far fewer candidates
    // than raw seed hits.
    BaselineConfig config;
    const GraphAlignerLike mapper(graph_, index_, config);
    Rng rng(53);
    BaselineStats stats;
    for (int trial = 0; trial < 5; ++trial) {
        const uint64_t start = rng.nextBelow(reference_.size() - 1200);
        mapper.map(reference_.substr(start, 1000), &stats);
    }
    EXPECT_LT(stats.seedsExtended, stats.rawSeeds);
}

TEST(MapperConfig, Validation)
{
    Rng rng(1);
    const std::string reference = sim::randomSequence(2'000, rng);
    const auto graph = graph::buildGraph(reference, {});
    index::IndexConfig index_config;
    index_config.bucketBits = 8;
    const auto index = index::MinimizerIndex::build(graph, index_config);
    BaselineConfig bad;
    bad.maxChains = 0;
    EXPECT_THROW(GraphAlignerLike(graph, index, bad), InputError);
    BaselineConfig bad_chunk;
    bad_chunk.vgChunkLen = 1;
    EXPECT_THROW(VgLike(graph, index, bad_chunk), InputError);
}

} // namespace
} // namespace segram::baseline
