#!/usr/bin/env sh
# CLI integration test: simulate a dataset, then
#  1. map the same reads as FASTA (1 thread) and FASTQ (2 threads) and
#     require byte-identical PAF output — wiring the FASTQ ingestion
#     path and the BatchMapper determinism contract through the real
#     binary;
#  2. compare the PAF at 1/2/4/8 threads against the committed golden
#     output (tests/golden/map_smoke.paf, captured before the
#     zero-allocation workspace refactor) — any drift in mapping
#     results across the refactor or thread counts fails here;
#  3. build a .segram pack with `segram index` and require that mapping
#     from the pack produces byte-identical PAF to mapping from
#     FASTA+VCF — the pack round-trip contract, end to end;
#  4. reject malformed numeric flags with clean errors (no silent
#     acceptance, no crashes), including the pipeline knobs
#     (--max-regions/--early-exit/--chain-filter/--max-chains/
#     --hop-limit), which must also be rejected under baseline engines;
#  5. wire the GFA route end to end: `segram construct` -> map straight
#     from the .gfa at 1/2/4 threads, requiring byte-identical PAF to
#     the FASTA+VCF route; a segment-shuffled copy of the GFA must map
#     identically too (the canonical fromGfa sort); `segram index`
#     accepts the GFA and the resulting pack maps identically; the
#     committed tests/data fixture exercises an external-style
#     pangenome with --path-coords reporting path-space positions;
#  6. run the accuracy loop: simulate -> map with all three engines
#     (segram, graphaligner, vg) plus the GFA route -> `segram eval`
#     against the .truth.tsv sidecar, gating SeGraM sensitivity at >=
#     either baseline minus epsilon (the paper's accuracy-parity
#     claim) and the GFA route at exactly the direct route's score.
#
# usage: test_cli.sh <path-to-segram-binary>
set -e
bin="$1"
test -x "$bin" || { echo "usage: test_cli.sh <segram-binary>"; exit 2; }
golden="$(dirname "$0")/golden/map_smoke.paf"
fixture="$(dirname "$0")/data/tiny_pangenome.gfa"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" simulate "$tmp/d" 20000 12 150 0.03 2> /dev/null
"$bin" map --threads 1 --batch 5 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/t1.paf" 2> /dev/null
"$bin" map --threads 2 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/t2.paf" 2> /dev/null

test -s "$tmp/t1.paf" || { echo "FAIL: empty PAF output"; exit 1; }
cmp "$tmp/t1.paf" "$tmp/t2.paf" || {
    echo "FAIL: FASTA/1-thread and FASTQ/2-thread PAF differ"
    exit 1
}
echo "cli fastq + threads OK ($(wc -l < "$tmp/t1.paf") PAF records)"

# --- golden output: bit-identical to the pre-refactor pipeline ---
test -s "$golden" || { echo "FAIL: missing golden $golden"; exit 1; }
for threads in 1 2 4 8; do
    "$bin" map --threads "$threads" "$tmp/d.fa" "$tmp/d.vcf" \
        "$tmp/d.reads.fa" > "$tmp/g$threads.paf" 2> /dev/null
    cmp "$golden" "$tmp/g$threads.paf" || {
        echo "FAIL: PAF at $threads thread(s) differs from golden"
        exit 1
    }
done
echo "cli golden output OK (bit-identical at 1/2/4/8 threads)"

# --stats must print the per-stage wall-time breakdown.
"$bin" map --threads 2 --stats "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > /dev/null 2> "$tmp/stats.log"
grep -q "stage breakdown" "$tmp/stats.log" || {
    echo "FAIL: map --stats printed no stage breakdown"
    exit 1
}
echo "cli --stats breakdown OK"

# The pipeline knobs must be accepted (and still map) on the segram
# engine; hop-limit 0 selects the software-exact unlimited mode.
"$bin" map --max-regions 8 --early-exit 0 --chain-filter \
    --max-chains 2 --hop-limit 0 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/knobs.paf" 2> /dev/null
test -s "$tmp/knobs.paf" || { echo "FAIL: knobs run mapped nothing"; exit 1; }
echo "cli pipeline knobs OK"

# --- pack round trip: simulate -> index -> map-from-pack ---
"$bin" index --stats "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.segram" \
    2> "$tmp/index.log"
test -s "$tmp/d.segram" || { echo "FAIL: empty pack"; exit 1; }
grep -q "graph tables" "$tmp/index.log" || {
    echo "FAIL: index --stats printed no footprint report"
    exit 1
}
grep -q "occurrence histogram" "$tmp/index.log" || {
    echo "FAIL: index --stats printed no occurrence histogram"
    exit 1
}
grep -q "hot seed" "$tmp/index.log" || {
    echo "FAIL: index --stats printed no hottest-seed list"
    exit 1
}
for threads in 1 2; do
    "$bin" map --threads "$threads" "$tmp/d.segram" "$tmp/d.reads.fq" \
        > "$tmp/pack$threads.paf" 2> /dev/null
    cmp "$tmp/t1.paf" "$tmp/pack$threads.paf" || {
        echo "FAIL: pack-mode PAF differs at $threads thread(s)"
        exit 1
    }
done
echo "cli pack round trip OK"

# --bucket-bits must reach the index build: both sides of the
# comparison use a non-default bucket count and must still agree.
"$bin" index --bucket-bits 12 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d12.segram" 2> /dev/null
"$bin" map --bucket-bits 12 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/bb_fresh.paf" 2> /dev/null
"$bin" map "$tmp/d12.segram" "$tmp/d.reads.fq" \
    > "$tmp/bb_pack.paf" 2> /dev/null
cmp "$tmp/bb_fresh.paf" "$tmp/bb_pack.paf" || {
    echo "FAIL: --bucket-bits 12 fresh vs pack PAF differ"
    exit 1
}
echo "cli --bucket-bits OK"

# A malformed pack must be rejected with a clean error, not a crash.
head -c 200 "$tmp/d.segram" > "$tmp/trunc.segram"
if "$bin" map "$tmp/trunc.segram" "$tmp/d.reads.fq" \
    > /dev/null 2> "$tmp/err.log"; then
    echo "FAIL: truncated pack was accepted"
    exit 1
fi
grep -q "invalid pack" "$tmp/err.log" || {
    echo "FAIL: truncated pack did not report a pack error"
    exit 1
}
echo "cli pack rejection OK"

# --- scale knobs: occurrence cap and the memory budget ---
# --max-occ 0 is documented as "uncapped": byte-identical to default.
"$bin" map --max-occ 0 "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.reads.fa" \
    > "$tmp/occ0.paf" 2> /dev/null
cmp "$tmp/t1.paf" "$tmp/occ0.paf" || {
    echo "FAIL: --max-occ 0 changed the PAF output"
    exit 1
}
# A huge cap no occurrence list reaches is also a no-op.
"$bin" map --max-occ 1000000 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/occhuge.paf" 2> /dev/null
cmp "$tmp/t1.paf" "$tmp/occhuge.paf" || {
    echo "FAIL: an unreachable --max-occ changed the PAF output"
    exit 1
}
# A tight cap must still map (subsampled seeding, same read count).
"$bin" map --max-occ 2 "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.reads.fa" \
    > "$tmp/occ2.paf" 2> /dev/null
test "$(wc -l < "$tmp/occ2.paf")" -eq "$(wc -l < "$tmp/t1.paf")" || {
    echo "FAIL: --max-occ 2 dropped reads"
    exit 1
}
# The budget path (cold load + LRU residency) must not change output,
# and must report its residency numbers.
"$bin" map --mem-budget 1 "$tmp/d.segram" "$tmp/d.reads.fq" \
    > "$tmp/budget.paf" 2> "$tmp/budget.log"
cmp "$tmp/t1.paf" "$tmp/budget.paf" || {
    echo "FAIL: --mem-budget changed the PAF output"
    exit 1
}
grep -q "mem budget" "$tmp/budget.log" || {
    echo "FAIL: --mem-budget printed no residency report"
    exit 1
}
# The budget needs droppable pages, so it requires a pack input.
if "$bin" map --mem-budget 64 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > /dev/null 2> "$tmp/err.log"; then
    echo "FAIL: --mem-budget without a pack was accepted"
    exit 1
fi
grep -q "error" "$tmp/err.log" || {
    echo "FAIL: --mem-budget without a pack died without a clean error"
    exit 1
}
# --discard-top must reach the index build: pack and fresh-map sides
# built with the same non-default fraction still agree byte-for-byte.
"$bin" index --discard-top 0.01 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/dt.segram" 2> /dev/null
"$bin" map --discard-top 0.01 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/dt_fresh.paf" 2> /dev/null
"$bin" map "$tmp/dt.segram" "$tmp/d.reads.fq" \
    > "$tmp/dt_pack.paf" 2> /dev/null
cmp "$tmp/dt_fresh.paf" "$tmp/dt_pack.paf" || {
    echo "FAIL: --discard-top 0.01 fresh vs pack PAF differ"
    exit 1
}
echo "cli scale knobs OK"

# --- multi-chromosome simulate ---
"$bin" simulate --chromosomes 3 --repeat-fraction 0.05 \
    --tandem-fraction 0.04 "$tmp/m" 30000 12 150 0.03 2> "$tmp/sim.log"
test "$(grep -c '^>' "$tmp/m.fa")" -eq 3 || {
    echo "FAIL: --chromosomes 3 did not emit 3 FASTA records"
    exit 1
}
grep -q "^chr3" "$tmp/m.vcf" || {
    echo "FAIL: multi-chromosome VCF has no chr3 records"
    exit 1
}
grep -q "chr3" "$tmp/m.truth.tsv" || {
    echo "FAIL: no truth rows landed on chr3"
    exit 1
}
grep -q "tandem repeat bases" "$tmp/sim.log" || {
    echo "FAIL: simulate printed no planted-repeat report"
    exit 1
}
# The multi-chromosome dataset must map end to end.
"$bin" map "$tmp/m.fa" "$tmp/m.vcf" "$tmp/m.reads.fa" \
    > "$tmp/m.paf" 2> /dev/null
test -s "$tmp/m.paf" || {
    echo "FAIL: multi-chromosome dataset mapped nothing"
    exit 1
}
echo "cli multi-chromosome simulate OK"

# --- GFA route: construct -> map-from-gfa, byte-identical PAF ---
"$bin" construct "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.gfa" 2> "$tmp/gfa.log"
grep -q "paths" "$tmp/gfa.log" || {
    echo "FAIL: construct reported no P lines"
    exit 1
}
grep -q "^P" "$tmp/d.gfa" || { echo "FAIL: GFA has no P line"; exit 1; }
for threads in 1 2 4; do
    "$bin" map --threads "$threads" "$tmp/d.gfa" "$tmp/d.reads.fa" \
        > "$tmp/gfa$threads.paf" 2> /dev/null
    cmp "$tmp/t1.paf" "$tmp/gfa$threads.paf" || {
        echo "FAIL: GFA-route PAF differs from FASTA+VCF at" \
             "$threads thread(s)"
        exit 1
    }
done
echo "cli map-from-gfa OK (bit-identical at 1/2/4 threads)"

# A segment-shuffled copy of the same GFA must map identically: the
# canonical topological sort in fromGfa makes node IDs independent of
# S-line order. (Reversing the S/L lines is a worst-case shuffle.)
{
    grep "^H" "$tmp/d.gfa"
    grep "^S" "$tmp/d.gfa" | sed -n '1!G;h;$p'
    grep "^L" "$tmp/d.gfa" | sed -n '1!G;h;$p'
    grep "^P" "$tmp/d.gfa"
} > "$tmp/d_shuffled.gfa"
"$bin" map --threads 2 "$tmp/d_shuffled.gfa" "$tmp/d.reads.fa" \
    > "$tmp/gfa_shuf.paf" 2> /dev/null
cmp "$tmp/t1.paf" "$tmp/gfa_shuf.paf" || {
    echo "FAIL: shuffled-segment GFA maps differently"
    exit 1
}
echo "cli shuffled-gfa invariance OK"

# `segram index` must accept the GFA (content-sniffed, two
# positionals) and the pack must map identically.
"$bin" index "$tmp/d.gfa" "$tmp/dgfa.segram" 2> /dev/null
"$bin" map "$tmp/dgfa.segram" "$tmp/d.reads.fq" \
    > "$tmp/gfa_pack.paf" 2> /dev/null
cmp "$tmp/t1.paf" "$tmp/gfa_pack.paf" || {
    echo "FAIL: GFA-built pack maps differently"
    exit 1
}
echo "cli index-from-gfa OK"

# The committed external-style fixture: out-of-order segments, a SNP
# bubble and an insertion allele, with a P line naming chrT. The read
# is an exact 100 bp cut of the reference path at position 100, so
# --path-coords must report chrT:100 with the 342 bp path length.
test -s "$fixture" || { echo "FAIL: missing fixture $fixture"; exit 1; }
cat > "$tmp/fix.fa" <<'EOF'
>fixread_pathpos100
CTGTGTCCACCCCATCGGACACTGGCATTTTTATTACACTCAGAAACAGAACTCGGGTAATTTTGACAGGTCACGCAGAGGCGCGCCCTCCTGAAGTGCG
EOF
"$bin" map --path-coords --bucket-bits 10 "$fixture" "$tmp/fix.fa" \
    > "$tmp/fix.paf" 2> /dev/null
test -s "$tmp/fix.paf" || { echo "FAIL: fixture read unmapped"; exit 1; }
awk -F'\t' '{
    if ($6 != "chrT" || $7 != 342 || $8 != 100) {
        printf "FAIL: fixture PAF target %s:%s/%s, want chrT:100/342\n", \
            $6, $8, $7
        exit 1
    }
}' "$tmp/fix.paf" || exit 1
echo "cli fixture + --path-coords OK"

# A malformed (cyclic) GFA must be rejected with a clean error.
printf 'S\ta\tACGT\nS\tb\tTTTT\nL\ta\t+\tb\t+\t0M\nL\tb\t+\ta\t+\t0M\n' \
    > "$tmp/cyclic.gfa"
if "$bin" map "$tmp/cyclic.gfa" "$tmp/d.reads.fa" \
    > /dev/null 2> "$tmp/err.log"; then
    echo "FAIL: cyclic GFA was accepted"
    exit 1
fi
grep -q "cyclic" "$tmp/err.log" || {
    echo "FAIL: cyclic GFA did not report a cycle error"
    exit 1
}
echo "cli gfa rejection OK"

# --- numeric flag validation: every bad value must fail loudly ---
# "--threads 0" used to mean "all cores"; it is now an explicit error.
for bad_flag in \
    "--threads 0" "--threads -1" "--threads eight" "--threads 4x" \
    "--batch 0" "--batch -3" "--batch many" \
    "--bucket-bits 0" "--bucket-bits 33" "--bucket-bits big" \
    "--engine turbo" "--threshold -5" "--threshold ten" \
    "--threshold 50" \
    "--max-regions -1" "--max-regions lots" \
    "--early-exit -0.5" "--early-exit fast" "--early-exit 101" \
    "--max-chains 0" "--max-chains -2" "--max-chains few" \
    "--hop-limit -1" "--hop-limit 65536" "--hop-limit tall" \
    "--max-occ -1" "--max-occ lots" \
    "--mem-budget 0" "--mem-budget -4" "--mem-budget big" \
    "--engine vg --max-regions 4" "--engine vg --early-exit 1.0" \
    "--engine graphaligner --chain-filter" \
    "--engine graphaligner --max-chains 2" \
    "--engine vg --hop-limit 12" "--engine vg --stats" \
    "--engine vg --max-occ 8" "--engine graphaligner --mem-budget 64"; do
    # shellcheck disable=SC2086
    if "$bin" map $bad_flag "$tmp/d.fa" "$tmp/d.vcf" \
        "$tmp/d.reads.fa" > /dev/null 2> "$tmp/flag.log"; then
        echo "FAIL: '$bad_flag' was accepted"
        exit 1
    fi
    grep -q "error" "$tmp/flag.log" || {
        echo "FAIL: '$bad_flag' rejected without a clear error message"
        cat "$tmp/flag.log"
        exit 1
    }
done
# Bad positional numbers on simulate must also fail loudly.
for bad_sim in "0 5 100 0.01" "10000 x 100 0.01" "10000 5 100 1.5" \
    "10000 5 100 0.01 --chromosomes 0" \
    "10000 5 100 0.01 --chromosomes 4097" \
    "10000 5 100 0.01 --repeat-fraction 1.5" \
    "10000 5 100 0.01 --tandem-fraction -0.1"; do
    # shellcheck disable=SC2086
    if "$bin" simulate "$tmp/bad" $bad_sim > /dev/null 2> "$tmp/flag.log"
    then
        echo "FAIL: simulate '$bad_sim' was accepted"
        exit 1
    fi
    grep -q "error" "$tmp/flag.log" || {
        echo "FAIL: simulate '$bad_sim' rejected without a clear error"
        exit 1
    }
done
# Flags must only be accepted by subcommands that consume them, and
# GFA-mode index must reject a stray third positional (otherwise the
# middle file would silently be overwritten with the pack).
for bad_cmd in \
    "index --path-coords $tmp/d.fa $tmp/d.vcf $tmp/x.segram" \
    "index $tmp/d.gfa $tmp/d.vcf $tmp/x.segram" \
    "index --discard-top 1.5 $tmp/d.fa $tmp/d.vcf $tmp/x.segram" \
    "index --discard-top -0.1 $tmp/d.fa $tmp/d.vcf $tmp/x.segram" \
    "index --discard-top half $tmp/d.fa $tmp/d.vcf $tmp/x.segram" \
    "construct --path-coords $tmp/d.fa $tmp/d.vcf $tmp/x.gfa" \
    "eval --path-coords $tmp/e.truth.tsv $tmp/segram.paf"; do
    # shellcheck disable=SC2086
    if "$bin" $bad_cmd > /dev/null 2> "$tmp/flag.log"; then
        echo "FAIL: '$bad_cmd' was accepted"
        exit 1
    fi
    grep -q "error" "$tmp/flag.log" || {
        echo "FAIL: '$bad_cmd' rejected without a clear error message"
        exit 1
    }
done
echo "cli flag validation OK"

# --- accuracy loop: simulate -> map x3 engines -> eval ---
"$bin" simulate "$tmp/e" 40000 60 150 0.03 2> /dev/null
test -s "$tmp/e.truth.tsv" || { echo "FAIL: no truth sidecar"; exit 1; }
# Sidecar rows must match the read count (plus one '#' header).
truth_rows=$(grep -vc '^#' "$tmp/e.truth.tsv")
test "$truth_rows" -eq 60 || {
    echo "FAIL: truth sidecar has $truth_rows rows, want 60"
    exit 1
}
for engine in segram graphaligner vg; do
    "$bin" map --engine "$engine" --threads 2 "$tmp/e.fa" "$tmp/e.vcf" \
        "$tmp/e.reads.fq" 0.05 > "$tmp/$engine.paf" 2> /dev/null
done
# The construct -> map-from-gfa route must score exactly like the
# direct FASTA+VCF route (it is the same graph, rebuilt from GFA).
"$bin" construct "$tmp/e.fa" "$tmp/e.vcf" "$tmp/e.gfa" 2> /dev/null
"$bin" map --threads 2 "$tmp/e.gfa" "$tmp/e.reads.fq" 0.05 \
    > "$tmp/gfa.paf" 2> /dev/null
cmp "$tmp/segram.paf" "$tmp/gfa.paf" || {
    echo "FAIL: eval-dataset GFA-route PAF differs from direct route"
    exit 1
}
"$bin" eval "$tmp/e.truth.tsv" \
    segram="$tmp/segram.paf" \
    gfa="$tmp/gfa.paf" \
    graphaligner="$tmp/graphaligner.paf" \
    vg="$tmp/vg.paf" > "$tmp/eval.tsv" 2> /dev/null

# Gate: SeGraM sensitivity must be >= each baseline - epsilon (0.05),
# and in absolute terms >= 0.9 on this easy dataset. awk reads the
# "all" rows of the TSV report.
awk -F'\t' '
    $2 == "all" { sens[$1] = $6 }
    END {
        eps = 0.05
        if (!("segram" in sens) || !("graphaligner" in sens) ||
            !("vg" in sens) || !("gfa" in sens)) {
            print "FAIL: eval TSV missing a mapper row"; exit 1
        }
        if (sens["gfa"] != sens["segram"]) {
            printf "FAIL: gfa route sensitivity %s != segram %s\n", \
                sens["gfa"], sens["segram"]
            exit 1
        }
        if (sens["segram"] < 0.9) {
            printf "FAIL: segram sensitivity %s < 0.9\n", sens["segram"]
            exit 1
        }
        if (sens["segram"] + eps < sens["graphaligner"]) {
            printf "FAIL: segram %s << graphaligner %s\n", \
                sens["segram"], sens["graphaligner"]
            exit 1
        }
        if (sens["segram"] + eps < sens["vg"]) {
            printf "FAIL: segram %s << vg %s\n", sens["segram"], \
                sens["vg"]
            exit 1
        }
        printf "eval sensitivity: segram %s, graphaligner %s, vg %s\n", \
            sens["segram"], sens["graphaligner"], sens["vg"]
    }' "$tmp/eval.tsv" || exit 1
echo "cli eval accuracy gate OK"

# --- output-path hardening: failed writes must not be silent ---
# ENOSPC-style failure: a sink that rejects every byte (/dev/full).
# map must exit nonzero with a diagnostic — silently truncated
# mappings look complete, which is worse than no output.
if [ -w /dev/full ]; then
    rc=0
    "$bin" map --threads 1 "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.reads.fa" \
        > /dev/full 2> "$tmp/full.log" || rc=$?
    test "$rc" -ne 0 || {
        echo "FAIL: map writing to /dev/full exited 0"
        exit 1
    }
    grep -q "error" "$tmp/full.log" || {
        echo "FAIL: no diagnostic on the /dev/full run"
        cat "$tmp/full.log"
        exit 1
    }
    echo "cli full-disk diagnostic OK (exit $rc)"
else
    echo "cli full-disk diagnostic SKIPPED (/dev/full not writable)"
fi

# Closed-pipe (EPIPE): `segram map | head` is everyday usage — the
# writer must exit 0 with a notice, not die of SIGPIPE or report a
# phantom error. A fifo whose read end opens and closes immediately
# makes the EPIPE deterministic (the mapper's writes are buffered and
# land long after the close).
mkfifo "$tmp/pipe"
"$bin" map --threads 1 "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.reads.fa" \
    > "$tmp/pipe" 2> "$tmp/pipe.log" &
map_pid=$!
exec 3< "$tmp/pipe"
exec 3<&-
rc=0
wait "$map_pid" || rc=$?
test "$rc" -eq 0 || {
    echo "FAIL: map into a closed pipe exited $rc (want 0)"
    cat "$tmp/pipe.log"
    exit 1
}
grep -q "pipe closed" "$tmp/pipe.log" || {
    echo "FAIL: no closed-pipe notice on stderr"
    cat "$tmp/pipe.log"
    exit 1
}
echo "cli closed-pipe handling OK"

# --- serve daemon smoke: load once, map many, reload, drain ---
"$bin" index "$tmp/d.fa" "$tmp/d.vcf" "$tmp/serve.segram" 2> /dev/null
"$bin" map --threads 2 "$tmp/serve.segram" "$tmp/d.reads.fa" \
    > "$tmp/offline.paf" 2> /dev/null
"$bin" serve --socket "$tmp/sv.sock" --threads 2 \
    ref="$tmp/serve.segram" 2> "$tmp/serve.log" &
serve_pid=$!
i=0
while [ ! -S "$tmp/sv.sock" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
test -S "$tmp/sv.sock" || {
    echo "FAIL: daemon socket never appeared"
    cat "$tmp/serve.log"
    exit 1
}
"$bin" client --socket "$tmp/sv.sock" ping | grep -q "PONG" || {
    echo "FAIL: daemon did not answer PING"
    exit 1
}
# Daemon output must be byte-identical to the offline command on the
# same pack and reads — the serving path adds zero mapping drift.
"$bin" client --socket "$tmp/sv.sock" map ref "$tmp/d.reads.fa" \
    > "$tmp/served.paf" 2> /dev/null
cmp "$tmp/offline.paf" "$tmp/served.paf" || {
    echo "FAIL: daemon PAF differs from offline map"
    exit 1
}
"$bin" client --socket "$tmp/sv.sock" stats > "$tmp/stats.txt"
grep -q "^server.map_requests 1$" "$tmp/stats.txt" || {
    echo "FAIL: STATS did not count the MAP request"
    cat "$tmp/stats.txt"
    exit 1
}
grep -q "^tenant.ref.reads " "$tmp/stats.txt" || {
    echo "FAIL: STATS missing the per-tenant section"
    exit 1
}
# Reload the pack in place, then map again: still byte-identical.
"$bin" client --socket "$tmp/sv.sock" reload ref "$tmp/serve.segram" \
    2> /dev/null || {
    echo "FAIL: reload rejected"
    exit 1
}
"$bin" client --socket "$tmp/sv.sock" map ref "$tmp/d.reads.fa" \
    > "$tmp/served2.paf" 2> /dev/null
cmp "$tmp/offline.paf" "$tmp/served2.paf" || {
    echo "FAIL: post-reload daemon PAF differs from offline map"
    exit 1
}
# Unknown references must be routed to an error, not a crash.
rc=0
"$bin" client --socket "$tmp/sv.sock" map ghost "$tmp/d.reads.fa" \
    > /dev/null 2> "$tmp/ghost.log" || rc=$?
test "$rc" -ne 0 || { echo "FAIL: mapping 'ghost' exited 0"; exit 1; }
grep -q "NOREF" "$tmp/ghost.log" || {
    echo "FAIL: no NOREF diagnostic for an unknown reference"
    cat "$tmp/ghost.log"
    exit 1
}
# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
test "$rc" -eq 0 || {
    echo "FAIL: daemon exited $rc on SIGTERM (want 0)"
    cat "$tmp/serve.log"
    exit 1
}
grep -q "shutting down" "$tmp/serve.log" || {
    echo "FAIL: no shutdown notice in the daemon log"
    cat "$tmp/serve.log"
    exit 1
}
if [ -S "$tmp/sv.sock" ]; then
    echo "FAIL: daemon left its socket file behind"
    exit 1
fi
echo "cli serve daemon OK (byte-identical, reload, graceful stop)"
