#!/usr/bin/env sh
# CLI integration test: simulate a dataset, then
#  1. map the same reads as FASTA (1 thread) and FASTQ (2 threads) and
#     require byte-identical PAF output — wiring the FASTQ ingestion
#     path and the BatchMapper determinism contract through the real
#     binary;
#  2. build a .segram pack with `segram index` and require that mapping
#     from the pack produces byte-identical PAF to mapping from
#     FASTA+VCF — the pack round-trip contract, end to end.
#
# usage: test_cli.sh <path-to-segram-binary>
set -e
bin="$1"
test -x "$bin" || { echo "usage: test_cli.sh <segram-binary>"; exit 2; }
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" simulate "$tmp/d" 20000 12 150 0.03 2> /dev/null
"$bin" map --threads 1 --batch 5 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/t1.paf" 2> /dev/null
"$bin" map --threads 2 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/t2.paf" 2> /dev/null

test -s "$tmp/t1.paf" || { echo "FAIL: empty PAF output"; exit 1; }
cmp "$tmp/t1.paf" "$tmp/t2.paf" || {
    echo "FAIL: FASTA/1-thread and FASTQ/2-thread PAF differ"
    exit 1
}
echo "cli fastq + threads OK ($(wc -l < "$tmp/t1.paf") PAF records)"

# --- pack round trip: simulate -> index -> map-from-pack ---
"$bin" index --stats "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.segram" \
    2> "$tmp/index.log"
test -s "$tmp/d.segram" || { echo "FAIL: empty pack"; exit 1; }
grep -q "graph tables" "$tmp/index.log" || {
    echo "FAIL: index --stats printed no footprint report"
    exit 1
}
for threads in 1 2; do
    "$bin" map --threads "$threads" "$tmp/d.segram" "$tmp/d.reads.fq" \
        > "$tmp/pack$threads.paf" 2> /dev/null
    cmp "$tmp/t1.paf" "$tmp/pack$threads.paf" || {
        echo "FAIL: pack-mode PAF differs at $threads thread(s)"
        exit 1
    }
done
echo "cli pack round trip OK"

# --bucket-bits must reach the index build: both sides of the
# comparison use a non-default bucket count and must still agree.
"$bin" index --bucket-bits 12 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d12.segram" 2> /dev/null
"$bin" map --bucket-bits 12 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/bb_fresh.paf" 2> /dev/null
"$bin" map "$tmp/d12.segram" "$tmp/d.reads.fq" \
    > "$tmp/bb_pack.paf" 2> /dev/null
cmp "$tmp/bb_fresh.paf" "$tmp/bb_pack.paf" || {
    echo "FAIL: --bucket-bits 12 fresh vs pack PAF differ"
    exit 1
}
echo "cli --bucket-bits OK"

# A malformed pack must be rejected with a clean error, not a crash.
head -c 200 "$tmp/d.segram" > "$tmp/trunc.segram"
if "$bin" map "$tmp/trunc.segram" "$tmp/d.reads.fq" \
    > /dev/null 2> "$tmp/err.log"; then
    echo "FAIL: truncated pack was accepted"
    exit 1
fi
grep -q "invalid pack" "$tmp/err.log" || {
    echo "FAIL: truncated pack did not report a pack error"
    exit 1
}
echo "cli pack rejection OK"
