#!/usr/bin/env sh
# CLI integration test: simulate a dataset, then
#  1. map the same reads as FASTA (1 thread) and FASTQ (2 threads) and
#     require byte-identical PAF output — wiring the FASTQ ingestion
#     path and the BatchMapper determinism contract through the real
#     binary;
#  2. compare the PAF at 1/2/4/8 threads against the committed golden
#     output (tests/golden/map_smoke.paf, captured before the
#     zero-allocation workspace refactor) — any drift in mapping
#     results across the refactor or thread counts fails here;
#  3. build a .segram pack with `segram index` and require that mapping
#     from the pack produces byte-identical PAF to mapping from
#     FASTA+VCF — the pack round-trip contract, end to end;
#  4. reject malformed numeric flags with clean errors (no silent
#     acceptance, no crashes), including the pipeline knobs
#     (--max-regions/--early-exit/--chain-filter/--max-chains/
#     --hop-limit), which must also be rejected under baseline engines;
#  5. run the accuracy loop: simulate -> map with all three engines
#     (segram, graphaligner, vg) -> `segram eval` against the
#     .truth.tsv sidecar, gating SeGraM sensitivity at >= either
#     baseline minus epsilon (the paper's accuracy-parity claim).
#
# usage: test_cli.sh <path-to-segram-binary>
set -e
bin="$1"
test -x "$bin" || { echo "usage: test_cli.sh <segram-binary>"; exit 2; }
golden="$(dirname "$0")/golden/map_smoke.paf"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" simulate "$tmp/d" 20000 12 150 0.03 2> /dev/null
"$bin" map --threads 1 --batch 5 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/t1.paf" 2> /dev/null
"$bin" map --threads 2 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/t2.paf" 2> /dev/null

test -s "$tmp/t1.paf" || { echo "FAIL: empty PAF output"; exit 1; }
cmp "$tmp/t1.paf" "$tmp/t2.paf" || {
    echo "FAIL: FASTA/1-thread and FASTQ/2-thread PAF differ"
    exit 1
}
echo "cli fastq + threads OK ($(wc -l < "$tmp/t1.paf") PAF records)"

# --- golden output: bit-identical to the pre-refactor pipeline ---
test -s "$golden" || { echo "FAIL: missing golden $golden"; exit 1; }
for threads in 1 2 4 8; do
    "$bin" map --threads "$threads" "$tmp/d.fa" "$tmp/d.vcf" \
        "$tmp/d.reads.fa" > "$tmp/g$threads.paf" 2> /dev/null
    cmp "$golden" "$tmp/g$threads.paf" || {
        echo "FAIL: PAF at $threads thread(s) differs from golden"
        exit 1
    }
done
echo "cli golden output OK (bit-identical at 1/2/4/8 threads)"

# --stats must print the per-stage wall-time breakdown.
"$bin" map --threads 2 --stats "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > /dev/null 2> "$tmp/stats.log"
grep -q "stage breakdown" "$tmp/stats.log" || {
    echo "FAIL: map --stats printed no stage breakdown"
    exit 1
}
echo "cli --stats breakdown OK"

# The pipeline knobs must be accepted (and still map) on the segram
# engine; hop-limit 0 selects the software-exact unlimited mode.
"$bin" map --max-regions 8 --early-exit 0 --chain-filter \
    --max-chains 2 --hop-limit 0 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/knobs.paf" 2> /dev/null
test -s "$tmp/knobs.paf" || { echo "FAIL: knobs run mapped nothing"; exit 1; }
echo "cli pipeline knobs OK"

# --- pack round trip: simulate -> index -> map-from-pack ---
"$bin" index --stats "$tmp/d.fa" "$tmp/d.vcf" "$tmp/d.segram" \
    2> "$tmp/index.log"
test -s "$tmp/d.segram" || { echo "FAIL: empty pack"; exit 1; }
grep -q "graph tables" "$tmp/index.log" || {
    echo "FAIL: index --stats printed no footprint report"
    exit 1
}
for threads in 1 2; do
    "$bin" map --threads "$threads" "$tmp/d.segram" "$tmp/d.reads.fq" \
        > "$tmp/pack$threads.paf" 2> /dev/null
    cmp "$tmp/t1.paf" "$tmp/pack$threads.paf" || {
        echo "FAIL: pack-mode PAF differs at $threads thread(s)"
        exit 1
    }
done
echo "cli pack round trip OK"

# --bucket-bits must reach the index build: both sides of the
# comparison use a non-default bucket count and must still agree.
"$bin" index --bucket-bits 12 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d12.segram" 2> /dev/null
"$bin" map --bucket-bits 12 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/bb_fresh.paf" 2> /dev/null
"$bin" map "$tmp/d12.segram" "$tmp/d.reads.fq" \
    > "$tmp/bb_pack.paf" 2> /dev/null
cmp "$tmp/bb_fresh.paf" "$tmp/bb_pack.paf" || {
    echo "FAIL: --bucket-bits 12 fresh vs pack PAF differ"
    exit 1
}
echo "cli --bucket-bits OK"

# A malformed pack must be rejected with a clean error, not a crash.
head -c 200 "$tmp/d.segram" > "$tmp/trunc.segram"
if "$bin" map "$tmp/trunc.segram" "$tmp/d.reads.fq" \
    > /dev/null 2> "$tmp/err.log"; then
    echo "FAIL: truncated pack was accepted"
    exit 1
fi
grep -q "invalid pack" "$tmp/err.log" || {
    echo "FAIL: truncated pack did not report a pack error"
    exit 1
}
echo "cli pack rejection OK"

# --- numeric flag validation: every bad value must fail loudly ---
# "--threads 0" used to mean "all cores"; it is now an explicit error.
for bad_flag in \
    "--threads 0" "--threads -1" "--threads eight" "--threads 4x" \
    "--batch 0" "--batch -3" "--batch many" \
    "--bucket-bits 0" "--bucket-bits 33" "--bucket-bits big" \
    "--engine turbo" "--threshold -5" "--threshold ten" \
    "--threshold 50" \
    "--max-regions -1" "--max-regions lots" \
    "--early-exit -0.5" "--early-exit fast" "--early-exit 101" \
    "--max-chains 0" "--max-chains -2" "--max-chains few" \
    "--hop-limit -1" "--hop-limit 65536" "--hop-limit tall" \
    "--engine vg --max-regions 4" "--engine vg --early-exit 1.0" \
    "--engine graphaligner --chain-filter" \
    "--engine graphaligner --max-chains 2" \
    "--engine vg --hop-limit 12" "--engine vg --stats"; do
    # shellcheck disable=SC2086
    if "$bin" map $bad_flag "$tmp/d.fa" "$tmp/d.vcf" \
        "$tmp/d.reads.fa" > /dev/null 2> "$tmp/flag.log"; then
        echo "FAIL: '$bad_flag' was accepted"
        exit 1
    fi
    grep -q "error" "$tmp/flag.log" || {
        echo "FAIL: '$bad_flag' rejected without a clear error message"
        cat "$tmp/flag.log"
        exit 1
    }
done
# Bad positional numbers on simulate must also fail loudly.
for bad_sim in "0 5 100 0.01" "10000 x 100 0.01" "10000 5 100 1.5"; do
    # shellcheck disable=SC2086
    if "$bin" simulate "$tmp/bad" $bad_sim > /dev/null 2> "$tmp/flag.log"
    then
        echo "FAIL: simulate '$bad_sim' was accepted"
        exit 1
    fi
    grep -q "error" "$tmp/flag.log" || {
        echo "FAIL: simulate '$bad_sim' rejected without a clear error"
        exit 1
    }
done
echo "cli flag validation OK"

# --- accuracy loop: simulate -> map x3 engines -> eval ---
"$bin" simulate "$tmp/e" 40000 60 150 0.03 2> /dev/null
test -s "$tmp/e.truth.tsv" || { echo "FAIL: no truth sidecar"; exit 1; }
# Sidecar rows must match the read count (plus one '#' header).
truth_rows=$(grep -vc '^#' "$tmp/e.truth.tsv")
test "$truth_rows" -eq 60 || {
    echo "FAIL: truth sidecar has $truth_rows rows, want 60"
    exit 1
}
for engine in segram graphaligner vg; do
    "$bin" map --engine "$engine" --threads 2 "$tmp/e.fa" "$tmp/e.vcf" \
        "$tmp/e.reads.fq" 0.05 > "$tmp/$engine.paf" 2> /dev/null
done
"$bin" eval "$tmp/e.truth.tsv" \
    segram="$tmp/segram.paf" \
    graphaligner="$tmp/graphaligner.paf" \
    vg="$tmp/vg.paf" > "$tmp/eval.tsv" 2> /dev/null

# Gate: SeGraM sensitivity must be >= each baseline - epsilon (0.05),
# and in absolute terms >= 0.9 on this easy dataset. awk reads the
# "all" rows of the TSV report.
awk -F'\t' '
    $2 == "all" { sens[$1] = $6 }
    END {
        eps = 0.05
        if (!("segram" in sens) || !("graphaligner" in sens) ||
            !("vg" in sens)) {
            print "FAIL: eval TSV missing a mapper row"; exit 1
        }
        if (sens["segram"] < 0.9) {
            printf "FAIL: segram sensitivity %s < 0.9\n", sens["segram"]
            exit 1
        }
        if (sens["segram"] + eps < sens["graphaligner"]) {
            printf "FAIL: segram %s << graphaligner %s\n", \
                sens["segram"], sens["graphaligner"]
            exit 1
        }
        if (sens["segram"] + eps < sens["vg"]) {
            printf "FAIL: segram %s << vg %s\n", sens["segram"], \
                sens["vg"]
            exit 1
        }
        printf "eval sensitivity: segram %s, graphaligner %s, vg %s\n", \
            sens["segram"], sens["graphaligner"], sens["vg"]
    }' "$tmp/eval.tsv" || exit 1
echo "cli eval accuracy gate OK"
