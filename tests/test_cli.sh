#!/usr/bin/env sh
# CLI integration test: simulate a dataset, then map the same reads as
# FASTA (1 thread) and as FASTQ (2 threads) and require byte-identical
# PAF output — wiring the FASTQ ingestion path and the BatchMapper
# determinism contract through the real binary.
#
# usage: test_cli.sh <path-to-segram-binary>
set -e
bin="$1"
test -x "$bin" || { echo "usage: test_cli.sh <segram-binary>"; exit 2; }
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" simulate "$tmp/d" 20000 12 150 0.03 2> /dev/null
"$bin" map --threads 1 --batch 5 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fa" > "$tmp/t1.paf" 2> /dev/null
"$bin" map --threads 2 "$tmp/d.fa" "$tmp/d.vcf" \
    "$tmp/d.reads.fq" > "$tmp/t2.paf" 2> /dev/null

test -s "$tmp/t1.paf" || { echo "FAIL: empty PAF output"; exit 1; }
cmp "$tmp/t1.paf" "$tmp/t2.paf" || {
    echo "FAIL: FASTA/1-thread and FASTQ/2-thread PAF differ"
    exit 1
}
echo "cli fastq + threads OK ($(wc -l < "$tmp/t1.paf") PAF records)"
