/**
 * @file
 * Tests for the io substrate: FASTA, VCF and GFA parsing/writing,
 * including malformed-input failure injection.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/io/fasta.h"
#include "src/io/fastq.h"
#include "src/io/fastx.h"
#include "src/io/gfa.h"
#include "src/io/paf.h"
#include "src/io/vcf.h"
#include "src/util/check.h"

namespace segram::io
{
namespace
{

TEST(Fasta, ParsesRecords)
{
    std::istringstream in(">chr1 description here\nACGT\nacgt\n>chr2\nTTTT\n");
    const auto records = readFasta(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "chr1");
    EXPECT_EQ(records[0].seq, "ACGTACGT");
    EXPECT_EQ(records[1].name, "chr2");
    EXPECT_EQ(records[1].seq, "TTTT");
}

TEST(Fasta, NormalizesAmbiguousBases)
{
    std::istringstream in(">x\nACGNN\n");
    EXPECT_EQ(readFasta(in)[0].seq, "ACGAA");
}

TEST(Fasta, HandlesCrlf)
{
    std::istringstream in(">x\r\nACGT\r\n");
    EXPECT_EQ(readFasta(in)[0].seq, "ACGT");
}

TEST(Fasta, RoundTrip)
{
    const std::vector<FastaRecord> records = {
        {"a", "ACGTACGTACGT"}, {"b", "TT"}};
    std::ostringstream out;
    writeFasta(out, records, 5);
    std::istringstream in(out.str());
    EXPECT_EQ(readFasta(in), records);
}

TEST(Fasta, RejectsMalformed)
{
    std::istringstream data_before_header("ACGT\n");
    EXPECT_THROW(readFasta(data_before_header), InputError);
    std::istringstream empty_record(">x\n>y\nAC\n");
    EXPECT_THROW(readFasta(empty_record), InputError);
    std::istringstream trailing_empty(">x\nAC\n>y\n");
    EXPECT_THROW(readFasta(trailing_empty), InputError);
    EXPECT_THROW(readFastaFile("/nonexistent/path.fa"), InputError);
}

TEST(Vcf, ParsesAndExpandsMultiAllelic)
{
    std::istringstream in(
        "##fileformat=VCFv4.2\n"
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n"
        "chr1\t5\trs1\tA\tG\t.\t.\t.\n"
        "chr1\t9\t.\tAC\tA,ACT\t.\t.\t.\n");
    const auto records = readVcf(in);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].pos, 5u);
    EXPECT_TRUE(records[0].isSnp());
    EXPECT_TRUE(records[1].isDeletion());
    EXPECT_TRUE(records[2].isInsertion());
    EXPECT_EQ(records[2].alt, "ACT");
}

TEST(Vcf, RoundTrip)
{
    const std::vector<VcfRecord> records = {
        {"chr1", 5, "rs1", "A", "G"},
        {"chr1", 9, ".", "AC", "A"},
    };
    std::ostringstream out;
    writeVcf(out, records);
    std::istringstream in(out.str());
    EXPECT_EQ(readVcf(in), records);
}

TEST(Vcf, RejectsMalformed)
{
    std::istringstream short_line("chr1\t5\tx\tA\n");
    EXPECT_THROW(readVcf(short_line), InputError);
    std::istringstream bad_pos("chr1\tfoo\tx\tA\tG\n");
    EXPECT_THROW(readVcf(bad_pos), InputError);
    std::istringstream zero_pos("chr1\t0\tx\tA\tG\n");
    EXPECT_THROW(readVcf(zero_pos), InputError);
    EXPECT_THROW(readVcfFile("/nonexistent/path.vcf"), InputError);
}

TEST(Gfa, ParsesSegmentsAndLinks)
{
    std::istringstream in(
        "H\tVN:Z:1.0\n"
        "S\t1\tACGT\n"
        "S\t2\tTT\n"
        "L\t1\t+\t2\t+\t0M\n");
    const auto doc = readGfa(in);
    ASSERT_EQ(doc.segments.size(), 2u);
    ASSERT_EQ(doc.links.size(), 1u);
    EXPECT_EQ(doc.segments[0].seq, "ACGT");
    EXPECT_EQ(doc.links[0].from, "1");
    EXPECT_EQ(doc.links[0].to, "2");
}

TEST(Gfa, RoundTrip)
{
    GfaDocument doc;
    doc.segments = {{"1", "ACGT"}, {"2", "GG"}, {"3", "T"}};
    doc.links = {{"1", "2"}, {"2", "3"}, {"1", "3"}};
    std::ostringstream out;
    writeGfa(out, doc);
    std::istringstream in(out.str());
    EXPECT_EQ(readGfa(in), doc);
}

TEST(Gfa, RejectsMalformed)
{
    std::istringstream dup("S\t1\tAC\nS\t1\tGG\n");
    EXPECT_THROW(readGfa(dup), InputError);
    std::istringstream reverse_link("S\t1\tAC\nS\t2\tGG\nL\t1\t+\t2\t-\t0M\n");
    EXPECT_THROW(readGfa(reverse_link), InputError);
    std::istringstream overlap("S\t1\tAC\nS\t2\tGG\nL\t1\t+\t2\t+\t3M\n");
    EXPECT_THROW(readGfa(overlap), InputError);
    std::istringstream dangling("S\t1\tAC\nL\t1\t+\t9\t+\t0M\n");
    EXPECT_THROW(readGfa(dangling), InputError);
    std::istringstream no_seq("S\t1\t*\n");
    EXPECT_THROW(readGfa(no_seq), InputError);
    std::istringstream unknown("Z\tfoo\n");
    EXPECT_THROW(readGfa(unknown), InputError);
}

TEST(Gfa, ParsesPathLines)
{
    std::istringstream in(
        "S\t1\tACGT\n"
        "S\t2\tTT\n"
        "S\t3\tGG\n"
        "L\t1\t+\t2\t+\t0M\n"
        "L\t2\t+\t3\t+\t0M\n"
        "P\tchr1\t1+,2+,3+\t*\n");
    const auto doc = readGfa(in);
    ASSERT_EQ(doc.paths.size(), 1u);
    EXPECT_EQ(doc.paths[0].name, "chr1");
    EXPECT_EQ(doc.paths[0].steps,
              (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Gfa, AcceptsTrivialOverlapLists)
{
    // The GFA1 spec writes one overlap per step pair ("0M,0M") —
    // vg view and other exporters emit exactly that.
    std::istringstream in(
        "S\t1\tACGT\nS\t2\tTT\nS\t3\tGG\n"
        "L\t1\t+\t2\t+\t0M\nL\t2\t+\t3\t+\t0M\n"
        "P\tchr1\t1+,2+,3+\t0M,0M\n");
    const auto doc = readGfa(in);
    ASSERT_EQ(doc.paths.size(), 1u);
    EXPECT_EQ(doc.paths[0].steps.size(), 3u);
    // A non-trivial overlap anywhere in the list is still rejected.
    std::istringstream bad(
        "S\t1\tACGT\nS\t2\tTT\nS\t3\tGG\n"
        "P\tchr1\t1+,2+,3+\t0M,3M\n");
    EXPECT_THROW(readGfa(bad), InputError);
}

TEST(Gfa, ParsesWalkLines)
{
    std::istringstream in(
        "S\ts1\tACGT\n"
        "S\ts2\tTT\n"
        "L\ts1\t+\ts2\t+\t0M\n"
        "W\tsampleA\t1\tchr2\t0\t6\t>s1>s2\n"
        "W\t*\t0\tchrX\t0\t6\t>s1>s2\n");
    const auto doc = readGfa(in);
    ASSERT_EQ(doc.paths.size(), 2u);
    EXPECT_EQ(doc.paths[0].name, "sampleA#1#chr2");
    EXPECT_EQ(doc.paths[0].steps,
              (std::vector<std::string>{"s1", "s2"}));
    EXPECT_EQ(doc.paths[1].name, "chrX");
}

TEST(Gfa, PathRoundTrip)
{
    GfaDocument doc;
    doc.segments = {{"1", "ACGT"}, {"2", "GG"}, {"3", "T"}};
    doc.links = {{"1", "2"}, {"2", "3"}, {"1", "3"}};
    doc.paths = {{"chr1", {"1", "2", "3"}}, {"alt1", {"1", "3"}}};
    std::ostringstream out;
    writeGfa(out, doc);
    std::istringstream in(out.str());
    EXPECT_EQ(readGfa(in), doc);
}

TEST(Gfa, RejectsMalformedPaths)
{
    // Dangling path step: names a segment that was never declared.
    std::istringstream dangling_step("S\t1\tAC\nP\tchr\t1+,9+\t*\n");
    EXPECT_THROW(readGfa(dangling_step), InputError);
    // Reverse-oriented path step.
    std::istringstream reverse_step(
        "S\t1\tAC\nS\t2\tGG\nL\t1\t+\t2\t+\t0M\nP\tchr\t1+,2-\t*\n");
    EXPECT_THROW(readGfa(reverse_step), InputError);
    // Duplicate path names (P/P and P/W).
    std::istringstream dup_path(
        "S\t1\tAC\nP\tchr\t1+\t*\nP\tchr\t1+\t*\n");
    EXPECT_THROW(readGfa(dup_path), InputError);
    std::istringstream dup_walk(
        "S\t1\tAC\nP\tchr\t1+\t*\nW\t*\t0\tchr\t0\t2\t>1\n");
    EXPECT_THROW(readGfa(dup_walk), InputError);
    // Empty step list and short records.
    std::istringstream no_steps("S\t1\tAC\nP\tchr\t\t*\n");
    EXPECT_THROW(readGfa(no_steps), InputError);
    std::istringstream short_p("P\tchr\n");
    EXPECT_THROW(readGfa(short_p), InputError);
    std::istringstream short_w("W\ta\t0\tchr\n");
    EXPECT_THROW(readGfa(short_w), InputError);
    // Reverse-oriented walk step.
    std::istringstream reverse_walk(
        "S\t1\tAC\nS\t2\tGG\nW\t*\t0\tchr\t0\t4\t>1<2\n");
    EXPECT_THROW(readGfa(reverse_walk), InputError);
}

TEST(Fastq, ParsesRecords)
{
    std::istringstream in(
        "@read1 extra stuff\nACGT\n+\nIIII\n@read2\nTTNA\n+anything\n"
        "!!!!\n");
    const auto records = readFastq(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "read1");
    EXPECT_EQ(records[0].seq, "ACGT");
    EXPECT_EQ(records[0].qual, "IIII");
    EXPECT_EQ(records[1].seq, "TTAA"); // N normalized
}

TEST(Fastq, RoundTrip)
{
    const std::vector<FastqRecord> records = {
        {"a", "ACGTAC", "IIIIII"}, {"b", "TT", "!!"}};
    std::ostringstream out;
    writeFastq(out, records);
    std::istringstream in(out.str());
    EXPECT_EQ(readFastq(in), records);
}

TEST(Fastq, RejectsMalformed)
{
    std::istringstream no_at(">x\nACGT\n+\nIIII\n");
    EXPECT_THROW(readFastq(no_at), InputError);
    std::istringstream truncated("@x\nACGT\n+\n");
    EXPECT_THROW(readFastq(truncated), InputError);
    std::istringstream bad_plus("@x\nACGT\nIIII\nIIII\n");
    EXPECT_THROW(readFastq(bad_plus), InputError);
    std::istringstream qual_mismatch("@x\nACGT\n+\nII\n");
    EXPECT_THROW(readFastq(qual_mismatch), InputError);
    EXPECT_THROW(readFastqFile("/nonexistent/reads.fq"), InputError);
}

TEST(Fastx, StreamsFastaIncrementally)
{
    std::istringstream in(
        ">chr1 desc\nACGT\nacgt\n\n>chr2\nTT\nTT\n");
    FastxReader reader(in);
    EXPECT_EQ(reader.format(), FastxFormat::Fasta);
    FastxRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.name, "chr1");
    EXPECT_EQ(record.seq, "ACGTACGT");
    EXPECT_TRUE(record.qual.empty());
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.name, "chr2");
    EXPECT_EQ(record.seq, "TTTT");
    EXPECT_FALSE(reader.next(record));
    EXPECT_FALSE(reader.next(record)); // stays at end
}

TEST(Fastx, StreamsFastqIncrementally)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2 x\nTTNA\n+sep\n!!!!\n");
    FastxReader reader(in);
    EXPECT_EQ(reader.format(), FastxFormat::Fastq);
    FastxRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.name, "r1");
    EXPECT_EQ(record.seq, "ACGT");
    EXPECT_EQ(record.qual, "IIII");
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.name, "r2");
    EXPECT_EQ(record.seq, "TTAA"); // N normalized
    EXPECT_FALSE(reader.next(record));
}

TEST(Fastx, NextBatchAppendsUpToLimit)
{
    std::istringstream in(">a\nAC\n>b\nGG\n>c\nTT\n");
    FastxReader reader(in);
    std::vector<FastxRecord> batch;
    EXPECT_EQ(reader.nextBatch(batch, 2), 2u);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].name, "a");
    EXPECT_EQ(batch[1].name, "b");
    // Appends (no clear), and the tail is shorter than the limit.
    EXPECT_EQ(reader.nextBatch(batch, 2), 1u);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[2].name, "c");
    EXPECT_EQ(reader.nextBatch(batch, 2), 0u);
}

TEST(Fastx, ForcedFormatRejectsTheOther)
{
    std::istringstream fastq_as_fasta("@x\nACGT\n+\nIIII\n");
    FastxReader forced_fasta(fastq_as_fasta, FastxFormat::Fasta);
    FastxRecord record;
    EXPECT_THROW(forced_fasta.next(record), InputError);

    std::istringstream fasta_as_fastq(">x\nACGT\n");
    FastxReader forced_fastq(fasta_as_fastq, FastxFormat::Fastq);
    EXPECT_THROW(forced_fastq.next(record), InputError);
}

TEST(Fastx, SniffRejectsJunkAndEmpty)
{
    std::istringstream junk("hello\n");
    EXPECT_THROW(FastxReader reader(junk), InputError);
    std::istringstream empty("");
    EXPECT_THROW(FastxReader reader(empty), InputError);
    EXPECT_THROW(FastxReader("/nonexistent/reads.fq"), InputError);
}

TEST(Fastx, MalformedMidStreamThrowsAfterGoodRecords)
{
    std::istringstream in(">a\nACGT\n>broken\n>c\nTT\n");
    FastxReader reader(in);
    FastxRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.name, "a");
    EXPECT_THROW(reader.next(record), InputError);
}

TEST(Fastx, CrlfLineEndingsAreStripped)
{
    // Windows-written reads files: every line ends "\r\n". The '\r'
    // must not leak into names, sequences or qualities.
    std::istringstream fasta(">a desc\r\nACGT\r\nGG\r\n>b\r\nTT\r\n");
    FastxReader fasta_reader(fasta);
    FastxRecord record;
    ASSERT_TRUE(fasta_reader.next(record));
    EXPECT_EQ(record.name, "a");
    EXPECT_EQ(record.seq, "ACGTGG");
    ASSERT_TRUE(fasta_reader.next(record));
    EXPECT_EQ(record.name, "b");
    EXPECT_EQ(record.seq, "TT");
    EXPECT_FALSE(fasta_reader.next(record));

    std::istringstream fastq("@r1\r\nACGT\r\n+\r\nIIII\r\n");
    FastxReader fastq_reader(fastq);
    ASSERT_TRUE(fastq_reader.next(record));
    EXPECT_EQ(record.name, "r1");
    EXPECT_EQ(record.seq, "ACGT");
    EXPECT_EQ(record.qual, "IIII");
}

TEST(Fastx, MultiLineFastaSpanningManyShortLines)
{
    // 60-char wrapped FASTA plus degenerate 1-char lines must
    // concatenate in order.
    std::istringstream in(">x\nA\nC\nG\nT\nACGTACGT\nA\n");
    FastxReader reader(in);
    FastxRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.seq, "ACGTACGTACGTA");
    EXPECT_FALSE(reader.next(record));
}

TEST(Fastx, EmptySequencesAreRejectedDeliberately)
{
    // A header with no sequence lines (mid-file and at end of file)
    // and an empty FASTQ sequence: all must throw InputError, never
    // produce an empty record or crash.
    std::istringstream empty_at_end(">a\nACGT\n>empty\n");
    FastxReader reader(empty_at_end);
    FastxRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_THROW(reader.next(record), InputError);

    std::istringstream blank_only(">a\n\n\n");
    FastxReader blank_reader(blank_only);
    EXPECT_THROW(blank_reader.next(record), InputError);

    std::istringstream empty_fastq("@r\n\n+\n\n");
    FastxReader fastq_reader(empty_fastq);
    EXPECT_THROW(fastq_reader.next(record), InputError);
}

TEST(Fastx, FinalRecordWithoutTrailingNewlineRoundTrips)
{
    std::istringstream fasta(">a\nACGT\n>b\nTTGG"); // no final '\n'
    FastxReader fasta_reader(fasta);
    FastxRecord record;
    ASSERT_TRUE(fasta_reader.next(record));
    ASSERT_TRUE(fasta_reader.next(record));
    EXPECT_EQ(record.name, "b");
    EXPECT_EQ(record.seq, "TTGG");
    EXPECT_FALSE(fasta_reader.next(record));

    std::istringstream fastq("@r\nACGT\n+\nIIII"); // no final '\n'
    FastxReader fastq_reader(fastq);
    ASSERT_TRUE(fastq_reader.next(record));
    EXPECT_EQ(record.seq, "ACGT");
    EXPECT_EQ(record.qual, "IIII");
    EXPECT_FALSE(fastq_reader.next(record));

    // CRLF variant of the same: final record ends "\r" with no "\n".
    std::istringstream crlf(">a\r\nACGT\r");
    FastxReader crlf_reader(crlf);
    ASSERT_TRUE(crlf_reader.next(record));
    EXPECT_EQ(record.seq, "ACGT");
    EXPECT_FALSE(crlf_reader.next(record));
}

TEST(Paf, BufferedWriterMatchesWritePaf)
{
    const Cigar cigar = Cigar::fromString("8=1X4=");
    const PafRecord record =
        makePafRecord("q", 13, '+', "chr9", 500, 42, cigar);

    std::ostringstream direct;
    writePaf(direct, record);

    std::ostringstream buffered;
    {
        PafWriter writer(buffered, 16); // tiny threshold: many flushes
        for (int i = 0; i < 5; ++i)
            writer.write(record);
        EXPECT_EQ(writer.recordsWritten(), 5u);
    } // destructor flushes the tail

    std::string expected;
    for (int i = 0; i < 5; ++i)
        expected += direct.str();
    EXPECT_EQ(buffered.str(), expected);
}

TEST(Paf, WriterFlushIsObservable)
{
    std::ostringstream out;
    PafWriter writer(out, 1 << 20);
    writer.write(makePafRecord("q", 4, '+', "t", 10, 0,
                               Cigar::fromString("4=")));
    EXPECT_TRUE(out.str().empty()); // still buffered
    writer.flush();
    EXPECT_FALSE(out.str().empty());
}

TEST(Paf, FlushThrowsIoErrorWhenTheStreamFails)
{
    // A stream that rejects every byte (badbit set by a failing
    // streambuf overflow — the in-memory stand-in for ENOSPC).
    class FailingBuf : public std::streambuf
    {
      protected:
        int_type
        overflow(int_type) override
        {
            return traits_type::eof();
        }
    } failing_buf;
    std::ostream out(&failing_buf);

    PafWriter writer(out, 1 << 20);
    writer.write(makePafRecord("q", 4, '+', "t", 10, 0,
                               Cigar::fromString("4=")));
    // The record was accepted (buffered)...
    EXPECT_EQ(writer.recordsWritten(), 1u);
    // ...but flush must surface the loss instead of dropping it.
    EXPECT_THROW(writer.flush(), IoError);
    // The count still reports what the caller handed over, so the
    // error message can say how much output is now suspect.
    EXPECT_EQ(writer.recordsWritten(), 1u);
}

TEST(Paf, DestructorReportsSwallowedStreamFailureOnStderr)
{
    class FailingBuf : public std::streambuf
    {
      protected:
        int_type
        overflow(int_type) override
        {
            return traits_type::eof();
        }
    } failing_buf;
    std::ostream out(&failing_buf);
    testing::internal::CaptureStderr();
    {
        PafWriter writer(out, 1 << 20);
        writer.write(makePafRecord("q", 4, '+', "t", 10, 0,
                                   Cigar::fromString("4=")));
    } // must not terminate: the dtor flush catches the IoError...
    const std::string diagnostic =
        testing::internal::GetCapturedStderr();
    // ...but the loss must not be silent: one warning line naming
    // the failure, so `segram map > out.paf` onto a full disk is
    // diagnosable even from a code path that forgot to flush().
    EXPECT_NE(diagnostic.find("segram: warning: PAF output lost"),
              std::string::npos)
        << "dtor swallowed a flush failure without a diagnostic; "
        << "stderr was: \"" << diagnostic << "\"";
    EXPECT_NE(diagnostic.find("PAF output stream failed"),
              std::string::npos)
        << diagnostic;
}

TEST(Paf, DestructorStaysSilentOnCleanFlush)
{
    std::ostringstream out;
    testing::internal::CaptureStderr();
    {
        PafWriter writer(out, 1 << 20);
        writer.write(makePafRecord("q", 4, '+', "t", 10, 0,
                                   Cigar::fromString("4=")));
    }
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    EXPECT_FALSE(out.str().empty());
}

TEST(Paf, WriteThrowsWhenAThresholdFlushFails)
{
    class FailingBuf : public std::streambuf
    {
      protected:
        int_type
        overflow(int_type) override
        {
            return traits_type::eof();
        }
    } failing_buf;
    std::ostream out(&failing_buf);

    // A threshold several records away: the failure surfaces at the
    // write() that crosses it and flushes into the failing stream —
    // not only at the final explicit flush().
    PafWriter writer(out, 1000);
    const PafRecord record = makePafRecord(
        "q", 4, '+', "t", 10, 0, Cigar::fromString("4="));
    EXPECT_THROW(
        {
            for (int i = 0; i < 100; ++i)
                writer.write(record);
        },
        IoError);
}

TEST(Paf, WritesRecordWithTags)
{
    const Cigar cigar = Cigar::fromString("10=1X5=2D3=1I4=");
    const PafRecord record =
        makePafRecord("read1", 24, '+', "chr1", 1000, 100, cigar);
    EXPECT_EQ(record.queryEnd, cigar.readLength());
    EXPECT_EQ(record.targetEnd, 100 + cigar.refLength());
    EXPECT_EQ(record.matches, 22u);
    std::ostringstream out;
    writePaf(out, record);
    const std::string line = out.str();
    EXPECT_NE(line.find("read1\t24\t0\t24\t+\tchr1\t1000\t100\t"),
              std::string::npos);
    EXPECT_NE(line.find("NM:i:4"), std::string::npos);
    EXPECT_NE(line.find("cg:Z:10=1X5=2D3=1I4="), std::string::npos);
}

class FileRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("segram_io_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const char *name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(FileRoundTrip, Fasta)
{
    const std::vector<FastaRecord> records = {
        {"chr1", "ACGTACGTAC"}, {"chr2", "TTTT"}};
    writeFastaFile(path("x.fa"), records);
    EXPECT_EQ(readFastaFile(path("x.fa")), records);
}

TEST_F(FileRoundTrip, Vcf)
{
    const std::vector<VcfRecord> records = {
        {"chr1", 3, "rs7", "A", "T"}, {"chr1", 8, ".", "ACG", "A"}};
    writeVcfFile(path("x.vcf"), records);
    EXPECT_EQ(readVcfFile(path("x.vcf")), records);
}

TEST_F(FileRoundTrip, Gfa)
{
    GfaDocument doc;
    doc.segments = {{"a", "ACGT"}, {"b", "GG"}};
    doc.links = {{"a", "b"}};
    doc.paths = {{"chr1", {"a", "b"}}};
    writeGfaFile(path("x.gfa"), doc);
    EXPECT_EQ(readGfaFile(path("x.gfa")), doc);
}

TEST_F(FileRoundTrip, IsGfaFileSniffsContent)
{
    GfaDocument doc;
    doc.segments = {{"a", "ACGT"}};
    writeGfaFile(path("x.gfa"), doc);
    EXPECT_TRUE(isGfaFile(path("x.gfa")));
    // A leading comment block must not defeat the sniff, no matter
    // how long (comments and blanks do not consume the scan budget).
    {
        std::ofstream out(path("c.gfa"));
        for (int i = 0; i < 40; ++i)
            out << "# preamble line " << i << "\n\n";
        out << "S\ta\tACGT\n";
    }
    EXPECT_TRUE(isGfaFile(path("c.gfa")));
    // FASTA, FASTQ, VCF and junk are not GFA.
    writeFastaFile(path("x.fa"), {{"chr1", "ACGT"}});
    EXPECT_FALSE(isGfaFile(path("x.fa")));
    writeFastqFile(path("x.fq"), {{"r", "ACGT", "IIII"}});
    EXPECT_FALSE(isGfaFile(path("x.fq")));
    {
        std::ofstream out(path("x.vcf"));
        out << "##fileformat=VCFv4.2\n";
    }
    EXPECT_FALSE(isGfaFile(path("x.vcf")));
    {
        std::ofstream out(path("x.txt"));
        out << "Hello world\n"; // 'H' tag but no tab separator
    }
    EXPECT_FALSE(isGfaFile(path("x.txt")));
    EXPECT_FALSE(isGfaFile(path("absent.gfa")));
}

TEST_F(FileRoundTrip, ReadsFileSniffsFormat)
{
    writeFastaFile(path("r.fa"), {{"a", "ACGT"}});
    writeFastqFile(path("r.fq"), {{"b", "GGTT", "IIII"}});
    const auto from_fasta = readReadsFile(path("r.fa"));
    ASSERT_EQ(from_fasta.size(), 1u);
    EXPECT_EQ(from_fasta[0].seq, "ACGT");
    const auto from_fastq = readReadsFile(path("r.fq"));
    ASSERT_EQ(from_fastq.size(), 1u);
    EXPECT_EQ(from_fastq[0].name, "b");
    EXPECT_EQ(from_fastq[0].seq, "GGTT");
    // Neither format:
    std::ofstream junk(path("r.txt"));
    junk << "hello\n";
    junk.close();
    EXPECT_THROW(readReadsFile(path("r.txt")), InputError);
}

TEST_F(FileRoundTrip, WriteToUnwritablePathThrows)
{
    EXPECT_THROW(writeFastaFile("/nonexistent/dir/x.fa", {}), InputError);
    EXPECT_THROW(writeVcfFile("/nonexistent/dir/x.vcf", {}), InputError);
    EXPECT_THROW(writeGfaFile("/nonexistent/dir/x.gfa", {}), InputError);
}

} // namespace
} // namespace segram::io
