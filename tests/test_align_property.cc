/**
 * @file
 * Property tests for BitAlign: randomized sweeps (TEST_P) comparing the
 * bitvector aligner against the DP oracle on random DAGs and random
 * strings, with full CIGAR validation on the consumed path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/align/bitalign.h"
#include "src/align/bitalign_core.h"
#include "src/align/genasm.h"
#include "src/align/myers.h"
#include "src/baseline/dp_s2g.h"
#include "src/baseline/dp_s2s.h"
#include "src/graph/linearize.h"
#include "src/util/dna.h"
#include "src/util/rng.h"
#include "tests/align_test_util.h"

namespace segram::align
{
namespace
{

using graph::LinearizedGraph;

class BitAlignVsOracle : public ::testing::TestWithParam<int>
{
};

TEST_P(BitAlignVsOracle, RandomDagMatchesDp)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        const int size = 20 + static_cast<int>(rng.nextBelow(120));
        const auto text = randomDag(rng, size, 0.15, 0.02);
        int edits = 0;
        const std::string path =
            samplePath(text, rng, 10 + rng.nextBelow(40));
        const std::string read = mutate(path, rng, 0.12, &edits);
        const int k = std::max<int>(8, edits + 4);

        const auto bitalign = alignWindow(text, read, k);
        const auto oracle = baseline::dpGraphDistance(text, read);

        if (oracle.editDistance <= k) {
            ASSERT_TRUE(bitalign.found)
                << "seed " << GetParam() << " trial " << trial;
            EXPECT_EQ(bitalign.editDistance, oracle.editDistance)
                << "seed " << GetParam() << " trial " << trial;
            // The traceback must be a real alignment of the read against
            // the consumed path, at the claimed cost.
            const std::string ref_path =
                consumedPath(text, bitalign.textPositions);
            EXPECT_TRUE(bitalign.cigar.validate(read, ref_path))
                << "read " << read << " path " << ref_path;
            EXPECT_EQ(bitalign.cigar.editDistance(),
                      static_cast<uint64_t>(bitalign.editDistance));
            // Consumed positions must follow graph edges.
            for (size_t i = 0; i + 1 < bitalign.textPositions.size();
                 ++i) {
                const int from = bitalign.textPositions[i];
                const int to = bitalign.textPositions[i + 1];
                bool edge = false;
                for (const auto delta : text.successorDeltas(from))
                    edge |= from + delta == to;
                EXPECT_TRUE(edge) << from << " -> " << to;
            }
        } else {
            EXPECT_FALSE(bitalign.found)
                << "oracle " << oracle.editDistance << " k " << k;
        }
    }
}

TEST_P(BitAlignVsOracle, DistanceOnlyAgreesWithTraceback)
{
    Rng rng(GetParam() + 1000);
    const auto text = randomDag(rng, 80, 0.2, 0.02);
    for (int trial = 0; trial < 10; ++trial) {
        int edits = 0;
        const std::string read =
            mutate(samplePath(text, rng, 30), rng, 0.15, &edits);
        const auto with_tb = alignWindow(text, read, 12);
        const auto without_tb = alignWindowDistanceOnly(text, read, 12);
        EXPECT_EQ(with_tb.found, without_tb.found);
        if (with_tb.found) {
            EXPECT_EQ(with_tb.editDistance, without_tb.editDistance);
            EXPECT_EQ(with_tb.startPos, without_tb.startPos);
        }
    }
}

TEST_P(BitAlignVsOracle, ChainCaseMatchesStringAligners)
{
    // On chain graphs, four independent implementations must agree:
    // BitAlign, GenASM, Myers and the DP table.
    Rng rng(GetParam() + 2000);
    for (int trial = 0; trial < 10; ++trial) {
        std::string text;
        const int n = 30 + static_cast<int>(rng.nextBelow(100));
        for (int i = 0; i < n; ++i)
            text.push_back(rng.nextBase());
        LinearizedGraph chain_text;
        for (int i = 0; i < n; ++i) {
            chain_text.pushChar(
                text[i], i + 1 < n ? std::vector<uint16_t>{1}
                                   : std::vector<uint16_t>{});
        }
        chain_text.finalize();

        int edits = 0;
        const int start = static_cast<int>(rng.nextBelow(n / 2));
        const int len =
            1 + static_cast<int>(rng.nextBelow(std::min(60, n - start)));
        const std::string read =
            mutate(text.substr(start, len), rng, 0.15, &edits);

        const auto dp = baseline::semiGlobal(text, read, false);
        const int k = dp.editDistance + 3;
        const auto bitalign = alignWindow(chain_text, read, k);
        const auto genasm = genAsmAlign(text, read, k);
        ASSERT_TRUE(bitalign.found);
        ASSERT_TRUE(genasm.found);
        EXPECT_EQ(bitalign.editDistance, dp.editDistance);
        EXPECT_EQ(genasm.editDistance, dp.editDistance);
        EXPECT_EQ(genasm.textStart, bitalign.startPos);
        if (read.size() <= 64) {
            EXPECT_EQ(myersAlign(text, read).editDistance,
                      dp.editDistance);
        }
    }
}

TEST_P(BitAlignVsOracle, WindowedIsValidAndNearExact)
{
    Rng rng(GetParam() + 3000);
    int equal = 0;
    int total = 0;
    for (int trial = 0; trial < 6; ++trial) {
        const auto text = randomDag(rng, 600, 0.1, 0.0);
        int edits = 0;
        // The divide-and-conquer contract: the alignment must start
        // within the first window, as MinSeed regions guarantee.
        const std::string read =
            mutate(samplePath(text, rng, 400, 24), rng, 0.05, &edits);
        if (read.size() < 200)
            continue;
        BitAlignConfig config;
        config.windowLen = 96;
        config.overlap = 32;
        config.windowEditCap = 24;
        const auto windowed = alignWindowed(text, read, config);
        const auto oracle = baseline::dpGraphDistance(text, read);
        if (!windowed.found)
            continue;
        ++total;
        // Windowed is a heuristic upper bound with bounded overage.
        EXPECT_GE(windowed.editDistance, oracle.editDistance);
        EXPECT_LE(windowed.editDistance,
                  oracle.editDistance +
                      std::max<int>(16, static_cast<int>(read.size()) / 8));
        EXPECT_EQ(windowed.cigar.readLength(), read.size());
        equal += windowed.editDistance == oracle.editDistance;
    }
    if (total > 0) {
        // Even on adversarial random DAGs (worst case for the greedy
        // cut), at least a third of alignments stay exactly optimal;
        // genome-like inputs are exercised by the integration tests.
        EXPECT_GE(equal * 3, total)
            << equal << " of " << total << " exact";
    }
}

TEST_P(BitAlignVsOracle, ChainDistanceInvariantUnderReverseComplement)
{
    // Sequence-to-graph property on linear graphs: edit distance is a
    // palindrome-symmetric metric, so aligning the reverse-complement
    // read against the reverse-complement text must cost exactly the
    // same. Catches any directional bias in the bitvector recurrence
    // (e.g. shift-direction or first/last-window asymmetries).
    Rng rng(GetParam() + 7000);
    for (int trial = 0; trial < 8; ++trial) {
        const int n = 30 + static_cast<int>(rng.nextBelow(90));
        std::string text;
        for (int i = 0; i < n; ++i)
            text.push_back(rng.nextBase());
        const std::string rc_text = reverseComplement(text);

        int edits = 0;
        const int start = static_cast<int>(rng.nextBelow(n / 2));
        const int len =
            1 + static_cast<int>(rng.nextBelow(std::min(50, n - start)));
        const std::string read =
            mutate(text.substr(start, len), rng, 0.12, &edits);
        const std::string rc_read = reverseComplement(read);

        const auto make_chain = [](const std::string &seq) {
            LinearizedGraph chain;
            const int size = static_cast<int>(seq.size());
            for (int i = 0; i < size; ++i)
                chain.pushChar(seq[i],
                               i + 1 < size ? std::vector<uint16_t>{1}
                                            : std::vector<uint16_t>{});
            chain.finalize();
            return chain;
        };
        const int k = edits + 4;
        const auto forward = alignWindow(make_chain(text), read, k);
        const auto reverse =
            alignWindow(make_chain(rc_text), rc_read, k);
        ASSERT_TRUE(forward.found);
        ASSERT_TRUE(reverse.found);
        EXPECT_EQ(forward.editDistance, reverse.editDistance)
            << "text " << text << " read " << read;
    }
}

TEST_P(BitAlignVsOracle, DistanceNeverExceedsPlantedErrorCount)
{
    // A read derived from a graph path by e edits can always be
    // aligned back at cost <= e; in particular an error-free window
    // must align exactly (distance 0). The mutate() edit counter is
    // the planted-error budget.
    Rng rng(GetParam() + 8000);
    for (int trial = 0; trial < 8; ++trial) {
        const int size = 30 + static_cast<int>(rng.nextBelow(120));
        const auto text = randomDag(rng, size, 0.15, 0.0);
        const std::string path =
            samplePath(text, rng, 12 + rng.nextBelow(40));

        // Error-free: the exact path must come back at distance 0.
        const auto clean = alignWindow(text, path, 4);
        ASSERT_TRUE(clean.found);
        EXPECT_EQ(clean.editDistance, 0) << "path " << path;

        // e planted errors: distance at most e (BitAlign is exact
        // within one window, so <= holds even when a cheaper
        // alignment than the planted one exists).
        int edits = 0;
        const std::string read = mutate(path, rng, 0.15, &edits);
        const auto noisy = alignWindow(text, read, edits + 2);
        ASSERT_TRUE(noisy.found);
        EXPECT_LE(noisy.editDistance, edits)
            << "path " << path << " read " << read;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitAlignVsOracle,
                         ::testing::Range(1, 13));

class S2SEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(S2SEquivalence, RandomStrings)
{
    // Fully random (unrelated) strings: worst-case edit distances.
    Rng rng(GetParam() + 5000);
    for (int trial = 0; trial < 6; ++trial) {
        const int n = 10 + static_cast<int>(rng.nextBelow(80));
        const int m = 1 + static_cast<int>(rng.nextBelow(40));
        std::string text;
        std::string read;
        for (int i = 0; i < n; ++i)
            text.push_back(rng.nextBase());
        for (int i = 0; i < m; ++i)
            read.push_back(rng.nextBase());
        const auto dp = baseline::semiGlobal(text, read, false);
        const auto genasm = genAsmAlign(text, read, m);
        ASSERT_TRUE(genasm.found);
        EXPECT_EQ(genasm.editDistance, dp.editDistance)
            << text << " / " << read;
        if (m <= 64) {
            EXPECT_EQ(myersAlign(text, read).editDistance,
                      dp.editDistance);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, S2SEquivalence, ::testing::Range(1, 9));

} // namespace
} // namespace segram::align
