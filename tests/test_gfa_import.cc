/**
 * @file
 * Tests for whole-document GFA import (graph::importGfa) and the
 * GFA-backed pre-processing route (PreprocessedReference::buildFromGfa):
 * component splitting, chromosome naming, shuffle invariance, and the
 * headline contract — a GFA exported from a FASTA+VCF-built reference
 * maps bit-identically to the original.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/reference.h"
#include "src/core/segram.h"
#include "src/graph/genome_graph.h"
#include "src/graph/gfa_import.h"
#include "src/graph/graph_builder.h"
#include "src/io/gfa.h"
#include "src/sim/dataset.h"
#include "src/sim/read_sim.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace segram
{
namespace
{

using graph::GenomeGraph;
using graph::importGfa;
using graph::NodeId;

/** Two-chromosome document the way `segram construct` writes it:
 *  disjoint components, prefixed segments, one P line each. */
io::GfaDocument
twoChromosomeDoc()
{
    io::GfaDocument doc;
    doc.segments = {{"chrA.1", "ACGTACGT"},
                    {"chrA.2", "T"},
                    {"chrA.3", "G"},
                    {"chrA.4", "ACGT"},
                    {"chrB.1", "TTTTCCCC"},
                    {"chrB.2", "GGGG"}};
    doc.links = {{"chrA.1", "chrA.2"},
                 {"chrA.1", "chrA.3"},
                 {"chrA.2", "chrA.4"},
                 {"chrA.3", "chrA.4"},
                 {"chrB.1", "chrB.2"}};
    doc.paths = {{"chrA", {"chrA.1", "chrA.2", "chrA.4"}},
                 {"chrB", {"chrB.1", "chrB.2"}}};
    return doc;
}

TEST(ImportGfa, SplitsComponentsAndNamesByPath)
{
    const auto chromosomes = importGfa(twoChromosomeDoc());
    ASSERT_EQ(chromosomes.size(), 2u);
    EXPECT_EQ(chromosomes[0].name, "chrA");
    EXPECT_EQ(chromosomes[0].graph.numNodes(), 4u);
    EXPECT_EQ(chromosomes[0].graph.numEdges(), 4u);
    EXPECT_EQ(chromosomes[0].graph.pathLength(), 13u);
    EXPECT_TRUE(chromosomes[0].graph.isTopologicallySorted());
    EXPECT_EQ(chromosomes[1].name, "chrB");
    EXPECT_EQ(chromosomes[1].graph.numNodes(), 2u);
    EXPECT_EQ(chromosomes[1].graph.numEdges(), 1u);
    EXPECT_TRUE(chromosomes[1].graph.isTopologicallySorted());
}

TEST(ImportGfa, PathlessComponentNamedByFirstSegment)
{
    io::GfaDocument doc;
    doc.segments = {{"s1", "ACGTACGT"}, {"s2", "TTTT"}};
    doc.links = {{"s1", "s2"}};
    const auto chromosomes = importGfa(doc);
    ASSERT_EQ(chromosomes.size(), 1u);
    EXPECT_EQ(chromosomes[0].name, "s1");
    // No path metadata: nothing is ALT, the whole graph is "path",
    // and path projection degenerates to the identity (refPos =
    // linearOffset) — not a per-segment reset to zero.
    const GenomeGraph &g = chromosomes[0].graph;
    EXPECT_EQ(g.pathLength(), g.totalSeqLen());
    for (uint64_t pos = 0; pos < g.totalSeqLen(); ++pos)
        EXPECT_EQ(g.pathProject(pos), pos);
    EXPECT_EQ(g.node(1).refPos, 8u); // s2 starts after s1's 8 bases
}

TEST(ImportGfa, ShuffledSegmentOrderImportsIdentically)
{
    const io::GfaDocument doc = twoChromosomeDoc();
    io::GfaDocument shuffled = doc;
    std::reverse(shuffled.segments.begin(), shuffled.segments.end());
    std::reverse(shuffled.links.begin(), shuffled.links.end());
    const auto a = importGfa(doc);
    const auto b = importGfa(shuffled);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
        EXPECT_EQ(a[c].name, b[c].name);
        const GenomeGraph &ga = a[c].graph;
        const GenomeGraph &gb = b[c].graph;
        ASSERT_EQ(ga.numNodes(), gb.numNodes());
        ASSERT_EQ(ga.numEdges(), gb.numEdges());
        for (NodeId id = 0; id < ga.numNodes(); ++id) {
            EXPECT_EQ(ga.nodeSeq(id), gb.nodeSeq(id));
            EXPECT_EQ(ga.node(id).refPos, gb.node(id).refPos);
            EXPECT_EQ(ga.node(id).isAlt, gb.node(id).isAlt);
            const auto sa = ga.successors(id);
            const auto sb = gb.successors(id);
            EXPECT_EQ(std::vector<NodeId>(sa.begin(), sa.end()),
                      std::vector<NodeId>(sb.begin(), sb.end()));
        }
    }
}

TEST(ImportGfa, RejectsEmptyAndDuplicateNames)
{
    EXPECT_THROW(importGfa({}), InputError);
    // Two pathless components whose first segments share a name is
    // impossible (duplicate segments are rejected), but a path name
    // colliding with another component's name is not.
    io::GfaDocument doc;
    doc.segments = {{"x", "ACGT"}, {"y", "TTTT"}};
    doc.paths = {{"y", {"x"}}}; // component of x named "y", clashes
    EXPECT_THROW(importGfa(doc), InputError);
}

/**
 * The headline contract behind `segram map <graph.gfa>`: exporting a
 * FASTA+VCF-built reference to GFA (the `segram construct` shape,
 * prefixed segments + P lines) and importing it back must produce a
 * reference whose mapping results are identical to the original —
 * including after shuffling the segment order of the exported file.
 */
TEST(ImportGfa, ImportedReferenceMapsIdenticallyToBuilt)
{
    sim::DatasetConfig config;
    config.genome.length = 8000;
    config.index.bucketBits = 13;
    config.seed = 99;
    const auto dataset = sim::makeDataset(config);

    // The "built from FASTA+VCF" side.
    std::vector<core::PreprocessedChromosome> built;
    built.push_back({"chr1", dataset.graph,
                     index::MinimizerIndex::build(dataset.graph,
                                                  config.index)});
    const core::PreprocessedReference reference(std::move(built));

    // The exported-GFA side, with construct-style prefixed names.
    const auto part = dataset.graph.toGfa("chr1");
    io::GfaDocument doc;
    for (const auto &segment : part.segments)
        doc.segments.push_back({"chr1." + segment.name, segment.seq});
    for (const auto &link : part.links)
        doc.links.push_back({"chr1." + link.from, "chr1." + link.to});
    io::GfaPath path;
    path.name = "chr1";
    for (const auto &step : part.paths.at(0).steps)
        path.steps.push_back("chr1." + step);
    doc.paths.push_back(path);

    io::GfaDocument shuffled = doc;
    std::reverse(shuffled.segments.begin(), shuffled.segments.end());

    for (const io::GfaDocument &variant : {doc, shuffled}) {
        auto imported = importGfa(variant);
        ASSERT_EQ(imported.size(), 1u);
        EXPECT_EQ(imported[0].name, "chr1");
        std::vector<core::PreprocessedChromosome> chromosomes;
        chromosomes.push_back(
            {imported[0].name, std::move(imported[0].graph), {}});
        chromosomes[0].index = index::MinimizerIndex::build(
            chromosomes[0].graph, config.index);
        const core::PreprocessedReference from_gfa(
            std::move(chromosomes));

        core::SegramConfig segram_config;
        segram_config.tryReverseComplement = true;
        const core::MultiGraphMapper expect(reference, segram_config);
        const core::MultiGraphMapper got(from_gfa, segram_config);

        Rng rng(4242);
        for (int trial = 0; trial < 40; ++trial) {
            const uint64_t start =
                rng.nextBelow(dataset.donor.seq().size() - 200);
            const std::string read =
                dataset.donor.seq().substr(start, 150);
            const auto a = expect.mapOne(read);
            const auto b = got.mapOne(read);
            EXPECT_EQ(a.mapped, b.mapped);
            EXPECT_EQ(a.linearStart, b.linearStart);
            EXPECT_EQ(a.editDistance, b.editDistance);
            EXPECT_EQ(a.reverseComplemented, b.reverseComplemented);
            EXPECT_EQ(a.chromosome, b.chromosome);
            EXPECT_EQ(a.cigar.toString(), b.cigar.toString());
        }
    }
}

/** buildFromGfa end to end through a real file, against buildFromFiles
 *  semantics: same graph shape, names, and index queryability. */
TEST(BuildFromGfa, ReadsFileAndReportsBuildInfo)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("segram_gfa_import_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string gfa_path = (dir / "ref.gfa").string();

    const GenomeGraph g = graph::buildGraph(
        "ACGTACGTACGTACGTACGTACGTACGTACGT", {{7, "G", "C"}});
    io::writeGfaFile(gfa_path, g.toGfa("chrZ"));

    index::IndexConfig config;
    config.bucketBits = 8;
    std::vector<core::ChromosomeBuildInfo> info;
    const auto reference =
        core::PreprocessedReference::buildFromGfa(gfa_path, config, &info);
    ASSERT_EQ(reference.numChromosomes(), 1u);
    EXPECT_EQ(reference.name(0), "chrZ");
    EXPECT_EQ(reference.graph(0).totalSeqLen(), g.totalSeqLen());
    ASSERT_EQ(info.size(), 1u);
    EXPECT_EQ(info[0].name, "chrZ");
    EXPECT_EQ(info[0].referenceBases, 32u);
    EXPECT_EQ(info[0].variantsApplied, 0u);

    EXPECT_THROW(
        core::PreprocessedReference::buildFromGfa("/nonexistent.gfa"),
        InputError);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace segram
