/**
 * @file
 * Variant-aware mapping: the paper's motivating scenario (Section 1).
 * Simulate a population-style dataset — reference, variant set, donor
 * haplotype, noisy short reads — then map the same reads against
 * (a) the genome graph and (b) the plain linear reference, and compare
 * edit distances and mapping accuracy.
 *
 * Reads sampled over ALT alleles align exactly on the graph but pay
 * edits on the linear reference (reference bias).
 *
 *   ./variant_aware_mapping
 */

#include <cstdio>

#include "src/core/segram.h"
#include "src/sim/dataset.h"

int
main()
{
    using namespace segram;

    // A 100 kbp chromosome with human-like variant density.
    sim::DatasetConfig config;
    config.genome.length = 100'000;
    config.variants.meanSpacing = 250.0;
    config.index.sketch = {15, 10};
    config.index.bucketBits = 14;
    config.seed = 7;
    const auto with_variants = sim::makeDataset(config);
    const auto linear = sim::makeLinearDataset(config);

    std::printf("reference: %zu bp, %zu variants, donor carries %zu ALT "
                "alleles\n",
                with_variants.reference.size(),
                with_variants.variants.size(),
                with_variants.donor.numAltsApplied());

    Rng rng(8);
    sim::ReadSimConfig read_config;
    read_config.readLen = 150;
    read_config.numReads = 60;
    read_config.errors = sim::ErrorProfile::illumina();
    const auto reads =
        sim::simulateReads(with_variants.donor, read_config, rng);

    core::SegramConfig mapper_config;
    mapper_config.earlyExitFraction = 1.0;
    const core::SegramMapper graph_mapper(with_variants.graph,
                                          with_variants.index,
                                          mapper_config);
    const core::SegramMapper linear_mapper(linear.graph, linear.index,
                                           mapper_config);

    int both = 0;
    int graph_only = 0;
    uint64_t graph_edits = 0;
    uint64_t linear_edits = 0;
    for (const auto &read : reads) {
        const auto on_graph = graph_mapper.mapRead(read.seq);
        const auto on_linear = linear_mapper.mapRead(read.seq);
        if (on_graph.mapped && on_linear.mapped) {
            ++both;
            graph_edits += on_graph.editDistance;
            linear_edits += on_linear.editDistance;
        } else if (on_graph.mapped) {
            ++graph_only;
        }
    }

    std::printf("\nreads mapped by both: %d; graph-only: %d\n", both,
                graph_only);
    std::printf("total edits on graph reference:  %llu\n",
                static_cast<unsigned long long>(graph_edits));
    std::printf("total edits on linear reference: %llu\n",
                static_cast<unsigned long long>(linear_edits));
    if (both > 0) {
        std::printf("\nreference-bias edits removed by the graph: %lld "
                    "(%.1f%% of linear edits)\n",
                    static_cast<long long>(linear_edits - graph_edits),
                    linear_edits == 0
                        ? 0.0
                        : 100.0 *
                              (static_cast<double>(linear_edits) -
                               static_cast<double>(graph_edits)) /
                              static_cast<double>(linear_edits));
    }
    return 0;
}
