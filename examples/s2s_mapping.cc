/**
 * @file
 * Sequence-to-sequence mapping: the paper's universality claim
 * (Section 9) in action. The exact same SegramMapper maps reads
 * against a *linear* reference — a chain graph where every node has
 * one outgoing edge — and the standalone GenASM string aligner
 * cross-checks each reported edit distance.
 *
 *   ./s2s_mapping
 */

#include <algorithm>
#include <cstdio>

#include "src/align/genasm.h"
#include "src/core/segram.h"
#include "src/sim/dataset.h"

int
main()
{
    using namespace segram;

    sim::DatasetConfig config;
    config.genome.length = 120'000;
    config.index.sketch = {15, 10};
    config.index.bucketBits = 14;
    config.seed = 12;
    const auto dataset = sim::makeLinearDataset(config);
    std::printf("linear reference: %zu bp as a chain graph of %zu "
                "nodes\n",
                dataset.reference.size(), dataset.graph.numNodes());

    Rng rng(13);
    sim::ReadSimConfig read_config;
    read_config.readLen = 250;
    read_config.numReads = 40;
    read_config.errors = sim::ErrorProfile::illumina();
    const auto reads =
        sim::simulateReads(dataset.donor, read_config, rng);

    core::SegramConfig mapper_config;
    mapper_config.earlyExitFraction = 1.0;
    const core::SegramMapper mapper(dataset.graph, dataset.index,
                                    mapper_config);

    int mapped = 0;
    int correct = 0;
    int cross_checked = 0;
    for (const auto &read : reads) {
        const auto result = mapper.mapRead(read.seq);
        if (!result.mapped)
            continue;
        ++mapped;
        const uint64_t truth = read.truthLinearStart;
        const uint64_t delta = result.linearStart > truth
                                   ? result.linearStart - truth
                                   : truth - result.linearStart;
        correct += delta <= 16;

        // Cross-check against the dedicated string aligner on the
        // window around the reported position.
        const uint64_t lo =
            result.linearStart > 16 ? result.linearStart - 16 : 0;
        const uint64_t len = std::min<uint64_t>(
            read.seq.size() + 64, dataset.reference.size() - lo);
        const auto genasm = align::genAsmAlign(
            std::string_view(dataset.reference).substr(lo, len),
            read.seq, 32);
        cross_checked +=
            genasm.found && genasm.editDistance == result.editDistance;
    }

    std::printf("mapped %d/%zu reads; %d at the true position\n", mapped,
                reads.size(), correct);
    std::printf("GenASM cross-check agreed on %d/%d mapped reads\n",
                cross_checked, mapped);
    std::printf("\nSeGraM ran unmodified: S2S mapping is the chain-graph "
                "special case of S2G.\n");
    return mapped == 0 ? 1 : 0;
}
