/**
 * @file
 * Quickstart: build a tiny genome graph from a reference plus two
 * variants, index it, and map a read that carries one ALT allele —
 * the whole SeGraM pipeline in ~50 lines.
 *
 *   ./quickstart
 */

#include <cstdio>
#include <string>

#include "src/core/segram.h"
#include "src/graph/graph_builder.h"
#include "src/index/minimizer_index.h"

int
main()
{
    using namespace segram;

    // 1. Pre-processing step 0.1: reference + variants -> genome graph.
    //    (With real data, io::readFastaFile / io::readVcfFile +
    //    graph::canonicalizeSet produce these inputs.)
    const std::string reference =
        "ACGTACGTAGGCCTTAGCATCGATCGGATCCTAGCATGCATCCGGATTTACGCATG"
        "CCATGGCATCGATTTGCACGTACCGGTAGCATCGATCGGATCCTAGCATGCATCCG";
    const std::vector<graph::Variant> variants = {
        {20, "T", "A"},  // SNP: T->A at position 20
        {60, "", "TTT"}, // insertion of TTT before position 60
    };
    const auto graph = graph::buildGraph(reference, variants);
    std::printf("graph: %zu nodes, %zu edges, %llu characters\n",
                graph.numNodes(), graph.numEdges(),
                static_cast<unsigned long long>(graph.totalSeqLen()));

    // 2. Pre-processing step 0.2: the three-level hash-table index.
    index::IndexConfig index_config;
    index_config.sketch = {11, 5}; // small k/w for a tiny example
    index_config.bucketBits = 10;
    const auto index = index::MinimizerIndex::build(graph, index_config);
    std::printf("index: %llu distinct minimizers, %llu locations\n",
                static_cast<unsigned long long>(
                    index.stats().numDistinctMinimizers),
                static_cast<unsigned long long>(
                    index.stats().numLocations));

    // 3. Map a read sampled from a donor that carries the SNP.
    std::string donor = reference;
    donor[20] = 'A';
    const std::string read = donor.substr(8, 48);

    core::SegramConfig config;
    config.minseed.errorRate = 0.05;
    const core::SegramMapper mapper(graph, index, config);
    const auto result = mapper.mapRead(read);

    if (!result.mapped) {
        std::printf("read did not map\n");
        return 1;
    }
    std::printf("read mapped at graph coordinate %llu with %d edits\n",
                static_cast<unsigned long long>(result.linearStart),
                result.editDistance);
    std::printf("CIGAR: %s\n", result.cigar.toString().c_str());
    std::printf("(0 edits: the ALT path absorbed the SNP — a linear "
                "reference would\nhave charged 1 edit; that is the "
                "reference-bias reduction genome graphs buy.)\n");
    return result.editDistance == 0 ? 0 : 1;
}
