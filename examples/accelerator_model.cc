/**
 * @file
 * Driving the hardware model directly: print the Table 1 area/power
 * breakdown, then estimate system throughput for a long-read and a
 * short-read workload whose seeding statistics are measured on a
 * simulated dataset (instead of being guessed), and explore two
 * what-if configurations.
 *
 *   ./accelerator_model
 */

#include <cstdio>
#include <iostream>

#include "src/hw/area_power.h"
#include "src/hw/system_model.h"
#include "src/seed/minseed.h"
#include "src/sim/dataset.h"

namespace
{

using namespace segram;

hw::ReadWorkload
measureWorkload(const sim::Dataset &dataset, uint32_t read_len,
                uint32_t num_reads, const sim::ErrorProfile &errors,
                double error_rate)
{
    Rng rng(5);
    sim::ReadSimConfig read_config{read_len, num_reads, errors};
    const auto reads =
        sim::simulateReads(dataset.donor, read_config, rng);

    seed::MinSeedConfig config;
    config.errorRate = error_rate;
    config.mergeDuplicateRegions = false;
    const seed::MinSeed minseed(dataset.graph, dataset.index, config);
    seed::MinSeedStats stats;
    for (const auto &read : reads)
        minseed.seedRead(read.seq, &stats);

    hw::ReadWorkload workload;
    workload.readLen = static_cast<int>(read_len);
    workload.seedsPerRead = std::max<double>(
        1.0, static_cast<double>(stats.seedsFetched) / reads.size());
    workload.minimizersPerRead =
        static_cast<double>(stats.minimizersComputed) / reads.size();
    workload.seedHitsPerMinimizer = 1.2;
    workload.regionBytes = read_len * 0.3 + 64.0;
    return workload;
}

void
printEstimate(const char *name, const hw::HwConfig &config,
              const hw::ReadWorkload &workload)
{
    const auto estimate = hw::estimateSystem(config, workload);
    std::printf("%-28s %10.1f us/seed %12.1f us/read %14.0f reads/s "
                "%8.1f W%s\n",
                name, estimate.timing.usPerSeed,
                estimate.timing.usPerRead, estimate.readsPerSecTotal,
                estimate.totalPowerW,
                estimate.bandwidthBound ? "  [bandwidth bound]" : "");
}

} // namespace

int
main()
{
    sim::DatasetConfig config;
    config.genome.length = 300'000;
    config.index.sketch = {15, 10};
    config.index.bucketBits = 15;
    config.seed = 4;
    const auto dataset = sim::makeDataset(config);

    printTable1(std::cout, hw::HwConfig::segram());

    std::printf("\n--- workload estimates (32 accelerators) ---\n");
    const auto long_reads = measureWorkload(
        dataset, 10'000, 4, sim::ErrorProfile::pacbio(0.05), 0.10);
    const auto short_reads = measureWorkload(
        dataset, 150, 100, sim::ErrorProfile::illumina(), 0.05);
    printEstimate("long reads  (10 kbp @5%)", hw::HwConfig::segram(),
                  long_reads);
    printEstimate("short reads (150 bp @1%)", hw::HwConfig::segram(),
                  short_reads);

    std::printf("\n--- what-if configurations (long reads) ---\n");
    hw::HwConfig wide = hw::HwConfig::segram();
    wide.bitsPerPe = 256;
    wide.windowOverlap = 96;
    printEstimate("W=256 PEs (wider windows)", wide, long_reads);

    hw::HwConfig slow_mem = hw::HwConfig::segram();
    slow_mem.hbmChannelBwGBps = 2.0;
    slow_mem.hbmLatencyNs = 400.0;
    printEstimate("DDR-like memory channel", slow_mem, long_reads);

    std::printf("\nnotes: per-seed time for 10 kbp reads sits near the "
                "paper's 35.9 us; the\nDDR-like variant shows why the "
                "paper pairs each accelerator with an HBM\nchannel "
                "(MinSeed becomes the bottleneck otherwise).\n");
    return 0;
}
