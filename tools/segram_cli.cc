/**
 * @file
 * `segram` — the command-line front end of the library, covering the
 * whole paper pipeline on real files:
 *
 *   segram construct <ref.fa> <vars.vcf> <out.gfa>
 *       Pre-processing step 0.1: build the topologically sorted genome
 *       graph (one per FASTA record / chromosome) and write it as GFA
 *       — disjoint components with name-prefixed segments, plus one P
 *       line per chromosome walking its reference backbone, so the
 *       chromosome names and path coordinates survive a round trip
 *       through the interchange format.
 *
 *   segram index [--bucket-bits N] [--discard-top F] [--stats]
 *                (<ref.fa> <vars.vcf> | <graph.gfa>) <out.segram>
 *       Full pre-processing (Section 5): graph + minimizer index per
 *       chromosome, serialized as a `.segram` pack — raw mmap-able
 *       tables mirroring the paper's Fig. 5/Fig. 6 memory layout.
 *       The graph source is either FASTA+VCF or an imported GFA
 *       (detected by content), e.g. a vg/minigraph-style pangenome or
 *       the output of `segram construct`. --discard-top sets the
 *       fraction of hottest minimizers the frequency filter ignores;
 *       --stats prints the per-chromosome table footprints plus the
 *       occurrence histogram (frequency deciles and hottest seeds)
 *       that drives --max-occ / --discard-top tuning.
 *
 *   segram map [--threads N] [--batch N] [--bucket-bits N]
 *              [--discard-top F] [--engine segram|graphaligner|vg]
 *              [--path-coords]
 *              (<ref.fa> <vars.vcf> | <graph.gfa> | <pack.segram>)
 *              <reads.fa|fq> [E]
 *       Full pipeline: obtain the pre-processed reference — by
 *       building it from FASTA+VCF, by importing a GFA graph, or by
 *       memory-mapping a `.segram` pack (all detected by content) —
 *       then stream the reads (FASTA or FASTQ) in batches through the
 *       multi-threaded BatchMapper (trying both strands) and print
 *       PAF to stdout. The stderr report splits pre-processing time
 *       from mapping time, so the build-once/map-forever win of packs
 *       is visible. E is the expected per-base error rate (default
 *       0.10). --engine swaps the SeGraM pipeline for one of the CPU
 *       baseline mappers (Section 10), so all three can be compared
 *       with `segram eval`. --path-coords reports PAF target
 *       coordinates projected onto the reference path (chromosome
 *       coordinates) instead of the graph's concatenated offsets.
 *       The segram engine runs the work-stealing (read-chunk x shard)
 *       scheduler; --max-occ caps the per-minimizer occurrence list
 *       at query time (deterministic stratified subsampling) and
 *       --mem-budget M keeps at most ~M MiB of pack shards resident
 *       (LRU + madvise), both human-scale-reference knobs.
 *
 *   segram simulate [--chromosomes N] [--repeat-fraction F]
 *                   [--tandem-fraction F]
 *                   <out_prefix> <genome_len> <num_reads> <read_len> <err>
 *       Emit a synthetic dataset (<prefix>.fa, <prefix>.vcf,
 *       <prefix>.reads.fa, an identical <prefix>.reads.fq, and a
 *       <prefix>.truth.tsv ground-truth sidecar recording where each
 *       read was planted) for trying the commands above. With
 *       --chromosomes > 1 the genome is split into skew-length
 *       chromosomes sharing dispersed repeat families (plus tandem
 *       arrays under --tandem-fraction), reads sampled per chromosome
 *       proportional to length — the scale harness behind
 *       bench_scale.
 *
 *   segram eval [--threshold N] <truth.tsv> <[name=]out.paf>...
 *       Accuracy evaluation: join each PAF file against the simulate
 *       ground truth and report sensitivity/precision, overall and per
 *       error profile. TSV rows to stdout, human summary to stderr.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "src/baseline/mappers.h"
#include "src/core/engine.h"
#include "src/core/reference.h"
#include "src/core/segram.h"
#include "src/core/sharded_mapper.h"
#include "src/eval/accuracy.h"
#include "src/graph/graph_builder.h"
#include "src/graph/variants.h"
#include "src/io/fasta.h"
#include "src/util/bitops_simd.h"
#include "src/io/fastq.h"
#include "src/io/fastx.h"
#include "src/io/gfa.h"
#include "src/io/pack.h"
#include "src/io/paf.h"
#include "src/io/vcf.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/sim/dataset.h"
#include "src/util/check.h"

namespace
{

using namespace segram;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Builds from FASTA+VCF, logging one line per chromosome. */
core::PreprocessedReference
buildReference(const std::string &fasta_path, const std::string &vcf_path,
               int bucket_bits,
               double discard_top = index::IndexConfig().discardTopFraction)
{
    index::IndexConfig config;
    config.bucketBits = bucket_bits;
    config.discardTopFraction = discard_top;
    std::vector<core::ChromosomeBuildInfo> info;
    auto reference = core::PreprocessedReference::buildFromFiles(
        fasta_path, vcf_path, config, &info);
    for (size_t i = 0; i < reference.numChromosomes(); ++i) {
        std::fprintf(
            stderr,
            "[segram] %s: %llu bp, %llu variants (%llu dropped), "
            "%zu nodes, %zu edges\n",
            info[i].name.c_str(),
            static_cast<unsigned long long>(info[i].referenceBases),
            static_cast<unsigned long long>(info[i].variantsApplied),
            static_cast<unsigned long long>(info[i].variantsDropped),
            reference.graph(i).numNodes(), reference.graph(i).numEdges());
    }
    return reference;
}

/** Imports a GFA graph, logging one line per recovered chromosome. */
core::PreprocessedReference
buildReferenceGfa(const std::string &gfa_path, int bucket_bits,
                  double discard_top =
                      index::IndexConfig().discardTopFraction)
{
    index::IndexConfig config;
    config.bucketBits = bucket_bits;
    config.discardTopFraction = discard_top;
    std::vector<core::ChromosomeBuildInfo> info;
    auto reference = core::PreprocessedReference::buildFromGfa(
        gfa_path, config, &info);
    for (size_t i = 0; i < reference.numChromosomes(); ++i) {
        std::fprintf(
            stderr,
            "[segram] %s (imported GFA): %llu path bp, %zu nodes, "
            "%zu edges\n",
            info[i].name.c_str(),
            static_cast<unsigned long long>(info[i].referenceBases),
            reference.graph(i).numNodes(), reference.graph(i).numEdges());
    }
    return reference;
}

int
cmdConstruct(const std::string &fasta_path, const std::string &vcf_path,
             const std::string &gfa_path)
{
    const auto records = io::readFastaFile(fasta_path);
    const auto vcf = io::readVcfFile(vcf_path);
    // Multiple chromosomes are written as disjoint components with
    // name-prefixed segments.
    io::GfaDocument doc;
    for (const auto &record : records) {
        uint64_t dropped = 0;
        const auto variants = graph::canonicalizeSet(
            vcf, record.name, record.seq.size(), &dropped);
        const auto graph = graph::buildGraph(record.seq, variants);
        std::fprintf(stderr,
                     "[segram] %s: %zu bp, %zu variants (%llu dropped), "
                     "%zu nodes, %zu edges\n",
                     record.name.c_str(), record.seq.size(),
                     variants.size(),
                     static_cast<unsigned long long>(dropped),
                     graph.numNodes(), graph.numEdges());
        // The per-chromosome P line keeps the chromosome name and its
        // reference-path coordinates importable; segment names are
        // prefixed so multi-chromosome documents stay collision-free.
        const auto part = graph.toGfa(record.name);
        for (const auto &segment : part.segments)
            doc.segments.push_back(
                {record.name + "." + segment.name, segment.seq});
        for (const auto &link : part.links)
            doc.links.push_back({record.name + "." + link.from,
                                 record.name + "." + link.to});
        for (const auto &path : part.paths) {
            io::GfaPath prefixed;
            prefixed.name = path.name;
            prefixed.steps.reserve(path.steps.size());
            for (const auto &step : path.steps)
                prefixed.steps.push_back(record.name + "." + step);
            doc.paths.push_back(std::move(prefixed));
        }
    }
    io::writeGfaFile(gfa_path, doc);
    std::fprintf(stderr,
                 "[segram] wrote %zu segments, %zu links, %zu paths "
                 "to %s\n",
                 doc.segments.size(), doc.links.size(), doc.paths.size(),
                 gfa_path.c_str());
    return 0;
}

/**
 * Prints the Fig. 5 graph-table and Fig. 7 index-level footprints of
 * one pre-processed chromosome (the `segram index --stats` report).
 */
void
printFootprint(const std::string &name, const graph::GenomeGraph &graph,
               const index::MinimizerIndex &index)
{
    const auto mb = [](uint64_t bytes) {
        return static_cast<double>(bytes) / (1024.0 * 1024.0);
    };
    std::fprintf(stderr,
                 "[segram] %s graph tables (Fig. 5): node %.2f MiB, "
                 "char %.2f MiB, edge %.2f MiB, total %.2f MiB\n",
                 name.c_str(), mb(graph.nodeTableBytes()),
                 mb(graph.charTableBytes()), mb(graph.edgeTableBytes()),
                 mb(graph.totalBytes()));
    const auto &stats = index.stats();
    std::fprintf(
        stderr,
        "[segram] %s index levels (Fig. 7, 2^%d buckets): "
        "L1 %.2f MiB, L2 %.2f MiB (%llu minimizers), "
        "L3 %.2f MiB (%llu locations), total %.2f MiB\n",
        name.c_str(), index.bucketBits(), mb(stats.firstLevelBytes),
        mb(stats.secondLevelBytes),
        static_cast<unsigned long long>(stats.numDistinctMinimizers),
        mb(stats.thirdLevelBytes),
        static_cast<unsigned long long>(stats.numLocations),
        mb(stats.totalBytes()));
}

/**
 * Prints the occurrence histogram of one chromosome's index: frequency
 * deciles of the distinct minimizers, the hottest seeds, and the
 * computed frequency threshold — the data a user tunes --discard-top
 * and `segram map --max-occ` against.
 */
void
printOccurrences(const std::string &name,
                 const index::MinimizerIndex &index)
{
    const auto report = index.occurrenceReport();
    std::fprintf(
        stderr,
        "[segram] %s occurrence histogram: %llu distinct minimizers, "
        "%llu locations, freq threshold %u (--discard-top %g)\n",
        name.c_str(),
        static_cast<unsigned long long>(report.distinctMinimizers),
        static_cast<unsigned long long>(report.totalLocations),
        report.freqThreshold, index.discardTopFraction());
    for (size_t d = 0; d < report.deciles.size(); ++d) {
        const auto &decile = report.deciles[d];
        std::fprintf(stderr,
                     "[segram]   decile %3zu%%: %llu minimizers, "
                     "max freq %u, %llu locations\n",
                     (d + 1) * 10,
                     static_cast<unsigned long long>(decile.minimizers),
                     decile.maxFrequency,
                     static_cast<unsigned long long>(decile.locations));
    }
    for (size_t i = 0; i < report.topSeeds.size(); ++i) {
        std::fprintf(
            stderr,
            "[segram]   hot seed %zu: hash %016llx, %u occurrences\n",
            i + 1,
            static_cast<unsigned long long>(report.topSeeds[i].hash),
            report.topSeeds[i].frequency);
    }
}

int
cmdIndex(const std::string &graph_source, const std::string &vcf_path,
         const std::string &pack_path, int bucket_bits,
         double discard_top, bool print_stats)
{
    const auto start = std::chrono::steady_clock::now();
    // An empty vcf_path selects the GFA import route (the caller
    // dispatched on content).
    const auto reference =
        vcf_path.empty()
            ? buildReferenceGfa(graph_source, bucket_bits, discard_top)
            : buildReference(graph_source, vcf_path, bucket_bits,
                             discard_top);
    const double build_sec = secondsSince(start);
    reference.save(pack_path);
    if (print_stats) {
        for (size_t i = 0; i < reference.numChromosomes(); ++i) {
            printFootprint(reference.name(i), reference.graph(i),
                           reference.index(i));
            printOccurrences(reference.name(i), reference.index(i));
        }
    }
    std::fprintf(
        stderr,
        "[segram] wrote %s: %zu chromosome%s, %.2f MiB "
        "(pre-processing took %.2f s)\n",
        pack_path.c_str(), reference.numChromosomes(),
        reference.numChromosomes() == 1 ? "" : "s",
        static_cast<double>(std::filesystem::file_size(pack_path)) /
            (1024.0 * 1024.0),
        build_sec);
    return 0;
}

/** Options of the map command. */
struct MapOptions
{
    /** FASTA+VCF mode: both set. Pack mode: packPath set. GFA mode:
     *  gfaPath set. */
    std::string fastaPath;
    std::string vcfPath;
    std::string packPath;
    std::string gfaPath;
    std::string readsPath;
    std::string engine = "segram";
    double errorRate = 0.10;
    int threads = 1;
    size_t batchSize = 256;
    int bucketBits = 16;
    /** Build-time frequency filter of the fresh-build path (packs
     *  bake it in at index time, like --bucket-bits). */
    double discardTop = index::IndexConfig().discardTopFraction;
    bool printStats = false;
    /** Report PAF target coordinates in reference-path space. */
    bool pathCoords = false;

    // SeGraM pipeline knobs (rejected for the baseline engines, which
    // do not consume them — a silently ignored flag fakes behaviour).
    uint32_t maxRegions = 0;     ///< 0 aligns every candidate region
    double earlyExit = 1.5;      ///< early-exit fraction; 0 disables
    bool chainFilter = false;    ///< enable seed chaining (Fig. 2 step 2)
    int maxChains = 4;           ///< chains kept when chaining is on
    int hopLimit = graph::kDefaultHopLimit; ///< HopBits height; 0 = no limit
    uint32_t maxOcc = 0;         ///< occurrence cap; 0 = uncapped
    uint64_t memBudgetMb = 0;    ///< resident-shard budget; 0 = off
};

/** The SegramConfig the map command's pipeline knobs select. */
core::SegramConfig
makeSegramConfig(const MapOptions &options)
{
    core::SegramConfig config;
    config.minseed.errorRate = options.errorRate;
    config.minseed.maxOccurrences = options.maxOcc;
    config.bitalign.windowEditCap =
        std::max(32, static_cast<int>(config.bitalign.windowLen *
                                      options.errorRate * 3));
    config.earlyExitFraction = options.earlyExit;
    config.tryReverseComplement = true;
    config.maxRegions = options.maxRegions;
    config.enableChainFilter = options.chainFilter;
    config.maxChains = options.maxChains;
    config.hopLimit = options.hopLimit;
    return config;
}

/**
 * Builds one of the CPU baseline mappers ("graphaligner", "vg") over a
 * pre-processed reference, lifted to multi-chromosome references via
 * MultiChromosomeEngine, so the accuracy harness can compare them with
 * the SeGraM pipeline on identical inputs. (The segram engine itself
 * does not come through here: cmdMap drives it with the work-stealing
 * ShardedBatchMapper, which is not a per-read MappingEngine.)
 */
std::unique_ptr<core::MappingEngine>
makeEngine(const core::PreprocessedReference &reference,
           const MapOptions &options)
{
    const std::string &engine_name = options.engine;
    const double error_rate = options.errorRate;
    SEGRAM_CHECK(engine_name == "graphaligner" || engine_name == "vg",
                 "--engine must be segram, graphaligner or vg, got '" +
                     engine_name + "'");
    baseline::BaselineConfig config;
    config.errorRate = error_rate;
    std::vector<core::MultiChromosomeEngine::Entry> entries;
    for (const auto &chromosome : reference.chromosomes()) {
        std::unique_ptr<core::MappingEngine> engine;
        if (engine_name == "graphaligner")
            engine = std::make_unique<baseline::GraphAlignerLike>(
                chromosome.graph, chromosome.index, config);
        else
            engine = std::make_unique<baseline::VgLike>(
                chromosome.graph, chromosome.index, config);
        entries.push_back({chromosome.name, std::move(engine)});
    }
    // Real GraphAligner/vg map both strands; the RC retry keeps the
    // accuracy comparison honest on two-strand read sets.
    return std::make_unique<core::RcRetryEngine>(
        std::make_unique<core::MultiChromosomeEngine>(
            std::move(entries), engine_name == "graphaligner"
                                    ? "graphaligner-like"
                                    : "vg-like"));
}

int
cmdMap(const MapOptions &options)
{
    // Phase 1 — pre-processing: mmap the pack, or rebuild from files.
    // Timed separately from mapping so the build-once/map-forever
    // split (and the win of packs) is visible in the report.
    const auto preprocess_start = std::chrono::steady_clock::now();
    const bool from_pack = !options.packPath.empty();
    const bool from_gfa = !options.gfaPath.empty();
    // Under a memory budget the pack is opened cold (no whole-file
    // prefetch, sections dropped after checksumming), so the resident
    // set starts near zero and the budget governs it from the first
    // batch on.
    io::PackLoadOptions load_options;
    load_options.coldLoad = options.memBudgetMb > 0;
    const core::PreprocessedReference reference =
        from_pack
            ? core::PreprocessedReference::load(options.packPath,
                                                load_options)
            : (from_gfa
                   ? buildReferenceGfa(options.gfaPath,
                                       options.bucketBits,
                                       options.discardTop)
                   : buildReference(options.fastaPath, options.vcfPath,
                                    options.bucketBits,
                                    options.discardTop));
    const double preprocess_sec = secondsSince(preprocess_start);

    // Per-chromosome PAF target metadata: concatenated-graph
    // coordinates by default, reference-path coordinates under
    // --path-coords (projected via the refPos/isAlt node metadata).
    struct TargetInfo
    {
        uint64_t len = 0;
        const graph::GenomeGraph *graph = nullptr;
    };
    std::unordered_map<std::string, TargetInfo> targets;
    for (const auto &chromosome : reference.chromosomes()) {
        targets[chromosome.name] = {options.pathCoords
                                        ? chromosome.graph.pathLength()
                                        : chromosome.graph.totalSeqLen(),
                                    &chromosome.graph};
    }
    // The segram engine maps through the work-stealing (read-chunk x
    // shard) driver — bit-identical output to the read-major path, but
    // shard-skew tolerant and memory-budget capable. The baselines map
    // per read through BatchMapper as before.
    std::unique_ptr<core::ShardedBatchMapper> sharded;
    std::unique_ptr<core::MappingEngine> engine;
    std::unique_ptr<core::BatchMapper> batch_mapper;
    if (options.engine == "segram") {
        core::ShardedBatchConfig sharded_config;
        sharded_config.threads = options.threads;
        sharded_config.memBudgetBytes =
            options.memBudgetMb * 1024 * 1024;
        sharded = std::make_unique<core::ShardedBatchMapper>(
            reference, makeSegramConfig(options), sharded_config);
    } else {
        engine = makeEngine(reference, options);
        core::BatchConfig batch_config;
        batch_config.threads = options.threads;
        batch_mapper =
            std::make_unique<core::BatchMapper>(*engine, batch_config);
    }
    const std::string_view engine_name = sharded != nullptr
                                             ? sharded->engineName()
                                             : engine->engineName();
    const int threads = sharded != nullptr ? sharded->threads()
                                           : batch_mapper->threads();

    // Stream reads -> batches -> worker pool -> buffered PAF, never
    // holding more than one batch in memory.
    io::FastxReader reader(options.readsPath);
    io::PafWriter paf(std::cout);
    core::PipelineStats stats;
    uint64_t total_reads = 0;
    uint64_t total_bases = 0;
    uint64_t mapped = 0;
    std::vector<io::FastxRecord> batch;
    std::vector<std::string_view> seqs;
    const auto start_time = std::chrono::steady_clock::now();
    // The whole output loop runs under an IoError guard: a reader that
    // goes away (`segram map | head`) is a graceful stop, while a
    // stream that fails for real (ENOSPC, EIO) must abort loudly —
    // silently truncated mappings look complete and are worse than no
    // output at all.
    try {
    while (true) {
        batch.clear();
        if (reader.nextBatch(batch, options.batchSize) == 0)
            break;
        seqs.clear();
        for (const auto &record : batch)
            seqs.push_back(record.seq);
        const auto results =
            sharded != nullptr
                ? sharded->mapBatch(
                      std::span<const std::string_view>(seqs), &stats)
                : batch_mapper->mapBatch(
                      std::span<const std::string_view>(seqs), &stats);
        for (size_t i = 0; i < results.size(); ++i) {
            total_bases += batch[i].seq.size();
            const auto &result = results[i];
            if (!result.mapped)
                continue;
            ++mapped;
            const TargetInfo &target = targets[result.chromosome];
            io::PafRecord record = io::makePafRecord(
                batch[i].name, batch[i].seq.size(),
                result.reverseComplemented ? '-' : '+',
                result.chromosome, target.len, result.linearStart,
                result.cigar);
            if (options.pathCoords) {
                // Project both alignment endpoints onto the reference
                // path (ALT bases consume graph but no path, so the
                // end must be projected too, not added). The end is
                // clamped into [targetStart, pathLength]: start +
                // refLength can land inside an ALT node the alignment
                // hopped over, whose divergence point sits behind the
                // start — an unclamped projection would emit an
                // inverted interval our own PAF parser rejects.
                const uint64_t ref_span = result.cigar.refLength();
                record.targetStart =
                    target.graph->pathProject(result.linearStart);
                record.targetEnd =
                    ref_span == 0
                        ? record.targetStart
                        : std::clamp(target.graph->pathProject(
                                         result.linearStart + ref_span -
                                         1) +
                                         1,
                                     record.targetStart, target.len);
            }
            paf.write(record);
        }
        total_reads += batch.size();
    }
    paf.flush();
    } catch (const IoError &error) {
        if (error.brokenPipe()) {
            // The consumer closed its end (head, a dying pager):
            // everyday shell usage, not a failure.
            std::fprintf(stderr,
                         "[segram] output pipe closed by the reader "
                         "after %llu records; stopping\n",
                         static_cast<unsigned long long>(
                             paf.recordsWritten()));
            return 0;
        }
        throw; // ENOSPC/EIO/...: main reports it and exits nonzero
    }
    const double wall = secondsSince(start_time);

    std::fprintf(stderr,
                 "[segram] %.*s: mapped %llu/%llu reads (%llu regions "
                 "aligned, %llu seeds fetched)\n",
                 static_cast<int>(engine_name.size()),
                 engine_name.data(),
                 static_cast<unsigned long long>(mapped),
                 static_cast<unsigned long long>(total_reads),
                 static_cast<unsigned long long>(stats.regionsAligned),
                 static_cast<unsigned long long>(
                     stats.seeding.seedsFetched));
    std::fprintf(
        stderr,
        "[segram] pre-processing %.3f s (%s), mapping %.2f s "
        "(%d thread%s): %.1f reads/s, %.0f bases/s\n",
        preprocess_sec,
        from_pack ? "mmap-loaded pack"
                  : (from_gfa ? "imported from GFA"
                              : "built from FASTA+VCF"),
        wall, threads, threads == 1 ? "" : "s",
        static_cast<double>(total_reads) / wall,
        static_cast<double>(total_bases) / wall);
    if (sharded != nullptr && options.memBudgetMb > 0) {
        const auto residency = sharded->residencyStats();
        std::fprintf(
            stderr,
            "[segram] mem budget %llu MiB: %llu shard acquisitions, "
            "%llu faults, %llu evictions, peak resident %.2f MiB\n",
            static_cast<unsigned long long>(options.memBudgetMb),
            static_cast<unsigned long long>(residency.acquisitions),
            static_cast<unsigned long long>(residency.faults),
            static_cast<unsigned long long>(residency.evictions),
            static_cast<double>(residency.peakResidentBytes) /
                (1024.0 * 1024.0));
    }
    if (options.printStats) {
        // Stage seconds are summed across worker threads (aggregate
        // stage work), so their total can exceed the wall time above.
        const core::StageTimings &timings = stats.timings;
        const double stage_total = timings.seedingSec +
                                   timings.linearizeSec +
                                   timings.alignSec;
        const auto pct = [stage_total](double sec) {
            return stage_total > 0.0 ? 100.0 * sec / stage_total : 0.0;
        };
        std::fprintf(
            stderr,
            "[segram] stage breakdown (summed over %d thread%s): "
            "seeding %.3f s (%.1f%%), linearization %.3f s (%.1f%%), "
            "alignment %.3f s (%.1f%%)\n",
            threads, threads == 1 ? "" : "s", timings.seedingSec,
            pct(timings.seedingSec), timings.linearizeSec,
            pct(timings.linearizeSec), timings.alignSec,
            pct(timings.alignSec));
        // Lane-occupancy gauge of the batched alignment path: how full
        // the SIMD lanes ran, and how much work fell back per-window.
        const uint64_t windows =
            stats.batchedWindows + stats.scalarWindows;
        const double occupancy =
            stats.batchLaunches > 0
                ? static_cast<double>(stats.batchedWindows) /
                      static_cast<double>(stats.batchLaunches)
                : 0.0;
        std::fprintf(
            stderr,
            "[segram] lane batching: %.2f/%d windows per launch, "
            "%.1f%% of %llu windows batched (%llu per-window)\n",
            occupancy, bitops::kBatchLanes,
            windows > 0 ? 100.0 *
                              static_cast<double>(stats.batchedWindows) /
                              static_cast<double>(windows)
                        : 0.0,
            static_cast<unsigned long long>(windows),
            static_cast<unsigned long long>(stats.scalarWindows));
        std::fprintf(stderr, "[segram] kernel backend: %s\n",
                     bitops::activeBackendName());
    }
    return mapped == 0 && total_reads > 0 ? 1 : 0;
}

int
cmdSimulate(const std::string &prefix, uint64_t genome_len,
            uint32_t num_reads, uint32_t read_len, double error_rate,
            uint32_t num_chromosomes, double repeat_fraction,
            double tandem_fraction)
{
    constexpr uint64_t kSeed = 1234;
    sim::RepeatReport repeats;
    std::vector<sim::ChromosomeDataset> dataset;
    if (num_chromosomes == 1) {
        // Single-chromosome path: the exact RNG call sequence of the
        // original generator (genome -> variants -> donor), so the
        // committed golden outputs keyed to seed 1234 stay valid.
        Rng rng(kSeed);
        sim::GenomeConfig genome_config;
        genome_config.length = genome_len;
        genome_config.repeatFraction = repeat_fraction;
        genome_config.tandemFraction = tandem_fraction;
        sim::ChromosomeDataset entry;
        entry.name = "chr1";
        entry.reference =
            sim::simulateGenome(genome_config, rng, &repeats);
        entry.variants = sim::simulateVariants(
            entry.reference, sim::VariantConfig{}, rng);
        entry.graph =
            graph::buildGraph(entry.reference, entry.variants);
        entry.donor = sim::DonorGenome(entry.reference, entry.variants,
                                       entry.graph, 0.5, rng);
        dataset.push_back(std::move(entry));
    } else {
        sim::MultiDatasetConfig config;
        config.genome.numChromosomes = num_chromosomes;
        config.genome.totalLength = genome_len;
        config.genome.repeats.repeatFraction = repeat_fraction;
        config.genome.repeats.tandemFraction = tandem_fraction;
        config.seed = kSeed;
        dataset = sim::makeMultiDataset(config, &repeats);
    }

    std::vector<io::FastaRecord> fasta;
    uint64_t total_bases = 0;
    for (const auto &entry : dataset) {
        fasta.push_back({entry.name, entry.reference});
        total_bases += entry.reference.size();
    }
    io::writeFastaFile(prefix + ".fa", fasta);
    std::vector<io::VcfRecord> vcf;
    for (const auto &entry : dataset) {
        for (const auto &variant : entry.variants) {
            if (variant.pos == 0)
                continue; // indels at position 0 cannot be VCF-padded
            vcf.push_back(
                graph::toVcfRecord(variant, entry.name,
                                   entry.reference));
        }
    }
    io::writeVcfFile(prefix + ".vcf", vcf);

    Rng rng(kSeed + 1);
    sim::ReadSimConfig read_config{
        read_len, num_reads,
        read_len >= 1000 ? sim::ErrorProfile::pacbio(error_rate)
                         : sim::ErrorProfile::illumina(error_rate)};
    // A quarter of the reads come from the minus strand, so mapping
    // them end to end exercises every engine's RC path and the truth
    // sidecar's strand column.
    read_config.revCompProbability = 0.25;
    const std::string profile = sim::profileLabel(read_config.errors);

    // Reads per chromosome proportional to length, chr1 (the largest)
    // absorbing the rounding remainder, so coverage is uniform across
    // the skewed chromosomes and the truth row count is exact.
    std::vector<uint32_t> counts(dataset.size());
    uint32_t assigned = 0;
    for (size_t c = 1; c < dataset.size(); ++c) {
        counts[c] = static_cast<uint32_t>(
            static_cast<uint64_t>(num_reads) *
            dataset[c].reference.size() / total_bases);
        assigned += counts[c];
    }
    counts[0] = num_reads - assigned;

    std::vector<io::FastaRecord> read_records;
    std::vector<io::FastqRecord> read_records_fq;
    std::vector<eval::TruthRecord> truth;
    size_t read_id = 0;
    for (size_t c = 0; c < dataset.size(); ++c) {
        if (counts[c] == 0)
            continue;
        sim::ReadSimConfig chromosome_reads = read_config;
        chromosome_reads.numReads = counts[c];
        const auto reads =
            sim::simulateReads(dataset[c].donor, chromosome_reads, rng);
        for (const auto &read : reads) {
            const std::string name =
                "read" + std::to_string(read_id++) + "_truth" +
                std::to_string(read.truthLinearStart);
            read_records.push_back({name, read.seq});
            // The same reads as FASTQ (constant quality) exercise the
            // FASTQ ingestion path of `segram map`.
            read_records_fq.push_back(
                {name, read.seq, std::string(read.seq.size(), 'I')});
            truth.push_back({name, dataset[c].name, read.donorStart,
                             read.truthLinearStart,
                             read.reverseComplemented ? '-' : '+',
                             static_cast<uint32_t>(read.seq.size()),
                             read.plantedErrors, profile});
        }
    }
    io::writeFastaFile(prefix + ".reads.fa", read_records);
    io::writeFastqFile(prefix + ".reads.fq", read_records_fq);
    eval::writeTruthFile(prefix + ".truth.tsv", truth);
    std::fprintf(
        stderr,
        "[segram] wrote %s.fa (%llu bp, %zu chromosome%s, "
        "%llu dispersed + %llu tandem repeat bases), %s.vcf "
        "(%zu records), %s.reads.{fa,fq} + %s.truth.tsv (%u %s reads)\n",
        prefix.c_str(), static_cast<unsigned long long>(total_bases),
        dataset.size(), dataset.size() == 1 ? "" : "s",
        static_cast<unsigned long long>(repeats.dispersedBases),
        static_cast<unsigned long long>(repeats.tandemBases),
        prefix.c_str(), vcf.size(), prefix.c_str(), prefix.c_str(),
        num_reads, profile.c_str());
    return 0;
}

/**
 * `segram eval`: joins each PAF file against the simulate truth
 * sidecar. Machine-readable TSV rows go to stdout; the human summary
 * goes to stderr. Exit 1 when any mapper placed zero reads correctly
 * (an eval of all-wrong mappings is almost certainly a mixed-up file
 * pair).
 */
int
cmdEval(const std::string &truth_path,
        const std::vector<std::string> &paf_args, uint64_t threshold)
{
    eval::EvalConfig config;
    config.distanceThreshold = threshold;
    const eval::AccuracyEvaluator evaluator(
        eval::readTruthFile(truth_path), config);
    SEGRAM_CHECK(evaluator.numTruthReads() > 0,
                 "truth file has no reads: " + truth_path);

    std::string tsv =
        "#mapper\tprofile\ttruth_reads\tmapped\tcorrect\t"
        "sensitivity\tprecision\n";
    bool every_mapper_placed_some = true;
    for (const auto &arg : paf_args) {
        // "name=path" labels the mapper; a bare path is its own
        // label. A '=' after a '/' belongs to the path (e.g.
        // /data/run=3/out.paf), not to a label.
        std::string name = arg;
        std::string path = arg;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos && eq > 0 &&
            arg.find('/') > eq) {
            name = arg.substr(0, eq);
            path = arg.substr(eq + 1);
        }
        const auto records = io::readPafFile(path);
        const auto report = evaluator.evaluate(name, records);
        eval::appendReportTsv(tsv, report);
        const std::string text = eval::formatReport(report);
        std::fprintf(stderr, "%s", text.c_str());
        if (report.overall.correctReads == 0) {
            std::fprintf(stderr,
                         "[segram] warning: %s placed zero reads "
                         "correctly (mixed-up truth/PAF pair?)\n",
                         name.c_str());
            every_mapper_placed_some = false;
        }
    }
    std::fwrite(tsv.data(), 1, tsv.size(), stdout);
    return every_mapper_placed_some ? 0 : 1;
}

/** Options of the serve command. */
struct ServeOptions
{
    std::string socketPath;  ///< unix-domain listener; empty = none
    std::string listenSpec;  ///< HOST:PORT TCP listener; empty = none
    int threads = 1;
    size_t queueCapacity = 64;
    uint64_t batchLimit = 65536;
    uint64_t memBudgetMb = 0;
    double errorRate = 0.10;
    /** Tenants: (reference name, pack path) pairs. */
    std::vector<std::pair<std::string, std::string>> packs;
};

/** Write end of the shutdown self-pipe (signal handler target). */
int g_shutdown_fd = -1;

extern "C" void
onShutdownSignal(int)
{
    // write() is async-signal-safe; everything else happens on the
    // main thread once the pipe wakes it.
    const char byte = 1;
    [[maybe_unused]] const ssize_t written =
        ::write(g_shutdown_fd, &byte, 1);
}

/**
 * `segram serve`: load every pack once, serve mapping requests until
 * SIGTERM/SIGINT, then drain and exit 0. The SegramConfig is built
 * through the same makeSegramConfig defaults as `segram map`, so the
 * daemon's PAF is byte-identical to the offline command on the same
 * pack and reads.
 */
int
cmdServe(const ServeOptions &options)
{
    // Same knob derivation as offline `segram map <pack> <reads> [E]`.
    MapOptions map_defaults;
    map_defaults.errorRate = options.errorRate;
    serve::ServiceConfig service_config;
    service_config.segram = makeSegramConfig(map_defaults);
    service_config.batch.threads = options.threads;
    service_config.batch.memBudgetBytes =
        options.memBudgetMb * 1024 * 1024;
    service_config.load.coldLoad = options.memBudgetMb > 0;

    serve::ServiceRegistry registry;
    for (const auto &[name, pack_path] : options.packs) {
        const auto load_start = std::chrono::steady_clock::now();
        auto service = std::make_shared<serve::MappingService>(
            name, pack_path, service_config);
        const auto snap = service->snapshot();
        std::fprintf(stderr,
                     "[segram] serving %s from %s: %zu shard%s, "
                     "%d thread%s (loaded in %.2f s)\n",
                     name.c_str(), pack_path.c_str(), snap.shards,
                     snap.shards == 1 ? "" : "s", snap.threads,
                     snap.threads == 1 ? "" : "s",
                     secondsSince(load_start));
        registry.add(std::move(service));
    }

    serve::ServerConfig server_config;
    server_config.unixPath = options.socketPath;
    if (!options.listenSpec.empty()) {
        const auto [host, port] = serve::parseHostPort(
            options.listenSpec);
        server_config.tcpHost = host;
        server_config.tcpPort = port;
    }
    server_config.queueCapacity = options.queueCapacity;
    server_config.maxReadsPerRequest = options.batchLimit;
    serve::Server server(registry, server_config);
    server.start();
    if (!options.socketPath.empty())
        std::fprintf(stderr, "[segram] listening on unix socket %s\n",
                     options.socketPath.c_str());
    if (!options.listenSpec.empty())
        std::fprintf(stderr, "[segram] listening on tcp %s:%d\n",
                     server_config.tcpHost.c_str(),
                     server.boundTcpPort());

    // Shutdown self-pipe: the handler only writes a byte; the main
    // thread does the actual (non-async-signal-safe) teardown.
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_CLOEXEC) != 0)
        throw IoError("pipe2() failed", errno);
    g_shutdown_fd = pipe_fds[1];
    std::signal(SIGTERM, onShutdownSignal);
    std::signal(SIGINT, onShutdownSignal);

    char byte = 0;
    while (::read(pipe_fds[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr,
                 "[segram] shutting down: draining in-flight "
                 "requests\n");
    server.stop();
    const std::string stats = server.statsText();
    std::fprintf(stderr, "%s", stats.c_str());
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    g_shutdown_fd = -1;
    return 0;
}

/** Options of the client command. */
struct ClientOptions
{
    std::string socketPath;  ///< unix-domain daemon address
    std::string connectSpec; ///< HOST:PORT daemon address
    size_t batchSize = 256;
    /** Subcommand: ping | stats | reload <ref> <pack> |
     *  map <ref> <reads>. */
    std::vector<std::string> command;
};

serve::ServeClient
connectClient(const ClientOptions &options)
{
    if (!options.socketPath.empty())
        return serve::ServeClient::connectUnixSocket(
            options.socketPath);
    const auto [host, port] =
        serve::parseHostPort(options.connectSpec);
    return serve::ServeClient::connectTcpSocket(host, port);
}

/**
 * Streams a reads file through the daemon in batches, printing the
 * PAF payload to stdout. `ERR BUSY` (the queue-full backpressure
 * signal) is retried with exponential backoff; every other error
 * aborts — retrying a NOREF forever would just hide a typo.
 */
int
cmdClientMap(serve::ServeClient &client, const std::string &reference,
             const std::string &reads_path, size_t batch_size)
{
    io::FastxReader reader(reads_path);
    std::vector<io::FastxRecord> batch;
    std::vector<serve::ReadRecord> reads;
    uint64_t total_reads = 0;
    uint64_t paf_lines = 0;
    uint64_t busy_retries = 0;
    try {
        while (true) {
            batch.clear();
            if (reader.nextBatch(batch, batch_size) == 0)
                break;
            reads.clear();
            for (auto &record : batch)
                reads.push_back({std::move(record.name),
                                 std::move(record.seq)});
            serve::Reply reply;
            for (uint64_t attempt = 0;; ++attempt) {
                reply = client.mapReads(reference, reads);
                if (reply.ok)
                    break;
                SEGRAM_CHECK(reply.code == serve::kErrBusy,
                             "server error " + reply.code + ": " +
                                 reply.message);
                SEGRAM_CHECK(attempt < 64,
                             "server still busy after " +
                                 std::to_string(attempt) +
                                 " retries: " + reply.message);
                ++busy_retries;
                // Exponential backoff, capped at ~100 ms per wait.
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    std::min<uint64_t>(100, 1ull << std::min<uint64_t>(
                                                attempt, 7))));
            }
            errno = 0;
            if (std::fwrite(reply.payload.data(), 1,
                            reply.payload.size(),
                            stdout) != reply.payload.size())
                throw IoError("short write to stdout", errno);
            paf_lines += reply.lines;
            total_reads += reads.size();
        }
        errno = 0;
        if (std::fflush(stdout) != 0)
            throw IoError("stdout flush failed", errno);
    } catch (const IoError &error) {
        if (error.brokenPipe()) {
            std::fprintf(stderr,
                         "[segram] output pipe closed by the reader; "
                         "stopping\n");
            return 0;
        }
        throw;
    }
    std::fprintf(stderr,
                 "[segram] client: %llu reads -> %llu PAF records "
                 "(%llu busy retries)\n",
                 static_cast<unsigned long long>(total_reads),
                 static_cast<unsigned long long>(paf_lines),
                 static_cast<unsigned long long>(busy_retries));
    return 0;
}

/** `segram client`: one-shot daemon interactions for scripts and CI. */
int
cmdClient(const ClientOptions &options)
{
    const auto &command = options.command;
    serve::ServeClient client = connectClient(options);
    if (command[0] == "ping") {
        const serve::Reply reply = client.ping();
        SEGRAM_CHECK(reply.ok, "ping failed: " + reply.code + " " +
                                   reply.message);
        std::printf("PONG\n");
        return 0;
    }
    if (command[0] == "stats") {
        const serve::Reply reply = client.stats();
        SEGRAM_CHECK(reply.ok, "stats failed: " + reply.code + " " +
                                   reply.message);
        std::fwrite(reply.payload.data(), 1, reply.payload.size(),
                    stdout);
        return 0;
    }
    if (command[0] == "reload") {
        SEGRAM_CHECK(command.size() >= 3,
                     "client reload takes <reference> <pack.segram>");
        const serve::Reply reply = client.reload(command[1],
                                                 command[2]);
        if (!reply.ok) {
            std::fprintf(stderr, "[segram] reload failed: %s %s\n",
                         reply.code.c_str(), reply.message.c_str());
            return 1;
        }
        std::fprintf(stderr, "[segram] reloaded %s from %s\n",
                     command[1].c_str(), command[2].c_str());
        return 0;
    }
    if (command[0] == "map") {
        SEGRAM_CHECK(command.size() >= 3,
                     "client map takes <reference> <reads.fa|fq>");
        return cmdClientMap(client, command[1], command[2],
                            options.batchSize);
    }
    throw InputError("unknown client subcommand '" + command[0] +
                     "' (expected ping, stats, reload or map)");
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  segram construct <ref.fa> <vars.vcf> <out.gfa>\n"
        "  segram index [--bucket-bits N] [--discard-top F] [--stats] "
        "<ref.fa> <vars.vcf> <out.segram>\n"
        "  segram index [--bucket-bits N] [--discard-top F] [--stats] "
        "<graph.gfa> <out.segram>\n"
        "  segram map [--threads N] [--batch N] [--bucket-bits N] "
        "[--discard-top F] [--engine segram|graphaligner|vg] [--stats]\n"
        "             [--max-regions N] [--early-exit F] "
        "[--chain-filter] [--max-chains N] [--hop-limit N] "
        "[--max-occ N] [--path-coords]\n"
        "             <ref.fa> <vars.vcf> <reads.fa|fq> [error_rate]\n"
        "  segram map [--threads N] [--batch N] [--engine E] "
        "[--mem-budget MiB] [...] "
        "(<graph.gfa> | <pack.segram>) <reads.fa|fq> [error_rate]\n"
        "  segram simulate [--chromosomes N] [--repeat-fraction F] "
        "[--tandem-fraction F]\n"
        "                  <prefix> <genome_len> <num_reads> "
        "<read_len> <error_rate>\n"
        "  segram eval [--threshold N] <truth.tsv> "
        "<[name=]out.paf>...\n"
        "  segram serve [--socket PATH] [--listen HOST:PORT] "
        "[--threads N] [--queue N]\n"
        "               [--batch-limit N] [--mem-budget MiB] "
        "[--error-rate F] <name=pack.segram>...\n"
        "  segram client (--socket PATH | --connect HOST:PORT) "
        "(ping | stats | reload <ref> <pack.segram> |\n"
        "               map [--batch N] <ref> <reads.fa|fq>)\n");
}

/** Parsed command line: flags extracted, positionals in order. */
struct Args
{
    std::vector<std::string> positional;
    int threads = 1;
    size_t batchSize = 256;
    int bucketBits = 16;
    bool stats = false;
    std::string engine = "segram";
    uint64_t threshold = 100;
    bool pathCoords = false;
    // SeGraM pipeline knobs (map only, --engine segram only).
    uint64_t maxRegions = 0;
    double earlyExit = 1.5;
    bool chainFilter = false;
    int maxChains = 4;
    int hopLimit = graph::kDefaultHopLimit;
    uint64_t maxOcc = 0;
    uint64_t memBudgetMb = 0;
    // Index build knob (index only).
    double discardTop = index::IndexConfig().discardTopFraction;
    // Serve/client knobs.
    std::string socketPath;
    std::string listenSpec;
    std::string connectSpec;
    uint64_t queueCapacity = 64;
    uint64_t batchLimit = 65536;
    double errorRate = 0.10;
    // Simulate knobs (simulate only).
    uint32_t chromosomes = 1;
    double repeatFraction = sim::GenomeConfig().repeatFraction;
    double tandemFraction = sim::GenomeConfig().tandemFraction;

    /** Names of the flags that appeared on the command line. */
    std::vector<std::string> seenFlags;

    bool
    seen(std::string_view flag) const
    {
        for (const auto &name : seenFlags)
            if (name == flag)
                return true;
        return false;
    }

    /**
     * Rejects flags that the dispatched subcommand does not consume —
     * a silently ignored flag fakes behaviour the run never had.
     * @p allowed lists the flags this subcommand understands.
     */
    void
    requireFlagsApplyTo(
        const char *command,
        std::initializer_list<std::string_view> allowed) const
    {
        for (const auto &name : seenFlags) {
            bool ok = false;
            for (const auto allow : allowed)
                ok = ok || name == allow;
            SEGRAM_CHECK(ok, name + " does not apply to `" + command +
                                 "`");
        }
    }
};

/** Strict integer flag parsing: rejects "eight", "4x", "". */
long long
parseIntFlag(const char *flag, const char *text)
{
    char *end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    SEGRAM_CHECK(end != text && *end == '\0',
                 std::string(flag) + " needs an integer, got '" + text +
                     "'");
    return value;
}

/** Strict double parsing for positional arguments. */
double
parseDoubleArg(const char *what, const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    SEGRAM_CHECK(end != text.c_str() && *end == '\0',
                 std::string(what) + " needs a number, got '" + text +
                     "'");
    return value;
}

/** Strict double flag parsing: rejects "fast", "1.5x", "". */
double
parseDoubleFlag(const char *flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    SEGRAM_CHECK(end != text && *end == '\0',
                 std::string(flag) + " needs a number, got '" + text +
                     "'");
    return value;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto next_value = [&](const char *flag) {
            SEGRAM_CHECK(i + 1 < argc,
                         std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--threads" || arg == "-t") {
            const long long value =
                parseIntFlag("--threads", next_value("--threads"));
            // 0 used to mean "all cores" and was silently surprising
            // on shared machines; an explicit count is now required.
            SEGRAM_CHECK(value >= 1 && value <= 4096,
                         "--threads must be in [1, 4096]");
            args.threads = static_cast<int>(value);
            args.seenFlags.push_back("--threads");
        } else if (arg == "--batch") {
            const long long value =
                parseIntFlag("--batch", next_value("--batch"));
            SEGRAM_CHECK(value >= 1, "--batch must be >= 1");
            args.batchSize = static_cast<size_t>(value);
            args.seenFlags.push_back("--batch");
        } else if (arg == "--bucket-bits") {
            const long long value = parseIntFlag(
                "--bucket-bits", next_value("--bucket-bits"));
            // Same domain MinimizerIndex::build accepts; the paper
            // sweeps up to 2^24 (Fig. 7).
            SEGRAM_CHECK(value >= 1 && value <= 32,
                         "--bucket-bits must be in [1, 32]");
            args.bucketBits = static_cast<int>(value);
            args.seenFlags.push_back("--bucket-bits");
        } else if (arg == "--engine") {
            args.engine = next_value("--engine");
            SEGRAM_CHECK(args.engine == "segram" ||
                             args.engine == "graphaligner" ||
                             args.engine == "vg",
                         "--engine must be segram, graphaligner or "
                         "vg, got '" +
                             args.engine + "'");
            args.seenFlags.push_back("--engine");
        } else if (arg == "--threshold") {
            const long long value =
                parseIntFlag("--threshold", next_value("--threshold"));
            SEGRAM_CHECK(value >= 0,
                         "--threshold must be >= 0 characters");
            args.threshold = static_cast<uint64_t>(value);
            args.seenFlags.push_back("--threshold");
        } else if (arg == "--max-regions") {
            const long long value = parseIntFlag(
                "--max-regions", next_value("--max-regions"));
            // 0 aligns every candidate (the hardware behaviour).
            SEGRAM_CHECK(value >= 0 && value <= 0xFFFFFFFFll,
                         "--max-regions must be in [0, 2^32)");
            args.maxRegions = static_cast<uint64_t>(value);
            args.seenFlags.push_back("--max-regions");
        } else if (arg == "--early-exit") {
            const double value = parseDoubleFlag(
                "--early-exit", next_value("--early-exit"));
            SEGRAM_CHECK(value >= 0.0 && value <= 100.0,
                         "--early-exit must be in [0, 100] "
                         "(0 disables early exit)");
            args.earlyExit = value;
            args.seenFlags.push_back("--early-exit");
        } else if (arg == "--chain-filter") {
            args.chainFilter = true;
            args.seenFlags.push_back("--chain-filter");
        } else if (arg == "--max-chains") {
            const long long value = parseIntFlag(
                "--max-chains", next_value("--max-chains"));
            SEGRAM_CHECK(value >= 1 && value <= 1'000'000,
                         "--max-chains must be in [1, 1000000]");
            args.maxChains = static_cast<int>(value);
            args.seenFlags.push_back("--max-chains");
        } else if (arg == "--hop-limit") {
            const long long value = parseIntFlag(
                "--hop-limit", next_value("--hop-limit"));
            // The HopBits height; 0 selects the software-exact
            // unlimited mode (graph::kUnlimitedHops).
            SEGRAM_CHECK(value >= 0 && value <= 0xFFFF,
                         "--hop-limit must be in [0, 65535] "
                         "(0 = unlimited)");
            args.hopLimit = static_cast<int>(value);
            args.seenFlags.push_back("--hop-limit");
        } else if (arg == "--max-occ") {
            const long long value =
                parseIntFlag("--max-occ", next_value("--max-occ"));
            // 0 keeps every surviving occurrence (the paper pipeline);
            // a positive cap subsamples over-full lists.
            SEGRAM_CHECK(value >= 0 && value <= 0xFFFFFFFFll,
                         "--max-occ must be in [0, 2^32) "
                         "(0 = uncapped)");
            args.maxOcc = static_cast<uint64_t>(value);
            args.seenFlags.push_back("--max-occ");
        } else if (arg == "--mem-budget") {
            const long long value = parseIntFlag(
                "--mem-budget", next_value("--mem-budget"));
            SEGRAM_CHECK(value >= 1 && value <= 1'048'576,
                         "--mem-budget must be in [1, 1048576] MiB");
            args.memBudgetMb = static_cast<uint64_t>(value);
            args.seenFlags.push_back("--mem-budget");
        } else if (arg == "--discard-top") {
            const double value = parseDoubleFlag(
                "--discard-top", next_value("--discard-top"));
            SEGRAM_CHECK(value >= 0.0 && value < 1.0,
                         "--discard-top must be in [0, 1) "
                         "(0 disables the frequency filter)");
            args.discardTop = value;
            args.seenFlags.push_back("--discard-top");
        } else if (arg == "--chromosomes") {
            const long long value = parseIntFlag(
                "--chromosomes", next_value("--chromosomes"));
            SEGRAM_CHECK(value >= 1 && value <= 4096,
                         "--chromosomes must be in [1, 4096]");
            args.chromosomes = static_cast<uint32_t>(value);
            args.seenFlags.push_back("--chromosomes");
        } else if (arg == "--repeat-fraction") {
            const double value = parseDoubleFlag(
                "--repeat-fraction", next_value("--repeat-fraction"));
            SEGRAM_CHECK(value >= 0.0 && value < 1.0,
                         "--repeat-fraction must be in [0, 1)");
            args.repeatFraction = value;
            args.seenFlags.push_back("--repeat-fraction");
        } else if (arg == "--tandem-fraction") {
            const double value = parseDoubleFlag(
                "--tandem-fraction", next_value("--tandem-fraction"));
            SEGRAM_CHECK(value >= 0.0 && value < 1.0,
                         "--tandem-fraction must be in [0, 1)");
            args.tandemFraction = value;
            args.seenFlags.push_back("--tandem-fraction");
        } else if (arg == "--socket") {
            args.socketPath = next_value("--socket");
            SEGRAM_CHECK(!args.socketPath.empty(),
                         "--socket needs a non-empty path");
            args.seenFlags.push_back("--socket");
        } else if (arg == "--listen") {
            args.listenSpec = next_value("--listen");
            args.seenFlags.push_back("--listen");
        } else if (arg == "--connect") {
            args.connectSpec = next_value("--connect");
            args.seenFlags.push_back("--connect");
        } else if (arg == "--queue") {
            const long long value =
                parseIntFlag("--queue", next_value("--queue"));
            SEGRAM_CHECK(value >= 1 && value <= 1'048'576,
                         "--queue must be in [1, 1048576]");
            args.queueCapacity = static_cast<uint64_t>(value);
            args.seenFlags.push_back("--queue");
        } else if (arg == "--batch-limit") {
            const long long value = parseIntFlag(
                "--batch-limit", next_value("--batch-limit"));
            SEGRAM_CHECK(value >= 1 && value <= 0xFFFFFFFFll,
                         "--batch-limit must be in [1, 2^32)");
            args.batchLimit = static_cast<uint64_t>(value);
            args.seenFlags.push_back("--batch-limit");
        } else if (arg == "--error-rate") {
            const double value = parseDoubleFlag(
                "--error-rate", next_value("--error-rate"));
            SEGRAM_CHECK(value >= 0.0 && value < 1.0,
                         "--error-rate must be in [0, 1)");
            args.errorRate = value;
            args.seenFlags.push_back("--error-rate");
        } else if (arg == "--path-coords") {
            args.pathCoords = true;
            args.seenFlags.push_back("--path-coords");
        } else if (arg == "--stats") {
            args.stats = true;
            args.seenFlags.push_back("--stats");
        } else {
            args.positional.emplace_back(arg);
        }
    }
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    // A closed stdout pipe (`segram map | head`) or a vanished daemon
    // client must surface as EPIPE from write(), which the IoError
    // paths handle deliberately — not as a silent SIGPIPE kill.
    std::signal(SIGPIPE, SIG_IGN);
    try {
        const Args args = parseArgs(argc, argv);
        const auto &pos = args.positional;
        if (pos.size() >= 4 && pos[0] == "construct") {
            args.requireFlagsApplyTo("construct", {});
            return cmdConstruct(pos[1], pos[2], pos[3]);
        }
        if (pos.size() >= 3 && pos[0] == "index") {
            args.requireFlagsApplyTo(
                "index", {"--bucket-bits", "--discard-top", "--stats"});
            // Graph source by content: an imported GFA replaces the
            // FASTA+VCF pair (and needs no VCF positional). Exactly
            // two positionals then — with a stray third one, pos[2]
            // would silently become the pack output and overwrite
            // whatever file the user actually passed there.
            if (io::isGfaFile(pos[1])) {
                SEGRAM_CHECK(pos.size() == 3,
                             "index from a GFA takes exactly "
                             "<graph.gfa> <out.segram>");
                return cmdIndex(pos[1], "", pos[2], args.bucketBits,
                                args.discardTop, args.stats);
            }
            SEGRAM_CHECK(pos.size() >= 4,
                         "index needs <ref.fa> <vars.vcf> <out.segram> "
                         "(or <graph.gfa> <out.segram>)");
            return cmdIndex(pos[1], pos[2], pos[3], args.bucketBits,
                            args.discardTop, args.stats);
        }
        if (pos.size() >= 3 && pos[0] == "map") {
            args.requireFlagsApplyTo(
                "map", {"--threads", "--batch", "--bucket-bits",
                        "--discard-top", "--engine", "--stats",
                        "--max-regions", "--early-exit",
                        "--chain-filter", "--max-chains", "--hop-limit",
                        "--max-occ", "--mem-budget", "--path-coords"});
            // The pipeline knobs configure the SeGraM pipeline only,
            // and --stats reports timings only SegramMapper collects;
            // silently ignoring them under a baseline engine would
            // fake tuned (or measured) runs.
            if (args.engine != "segram") {
                for (const char *knob :
                     {"--max-regions", "--early-exit", "--chain-filter",
                      "--max-chains", "--hop-limit", "--max-occ",
                      "--mem-budget", "--stats"}) {
                    SEGRAM_CHECK(!args.seen(knob),
                                 std::string(knob) +
                                     " only applies to --engine segram");
                }
            }
            MapOptions options;
            // Three input modes, detected by content (magic/sniff),
            // not by file extension: a `.segram` pack or an imported
            // GFA graph replaces the FASTA+VCF pair.
            size_t reads_pos;
            if (io::isPackFile(pos[1])) {
                // The bucket count was baked in at index time; a
                // silently ignored sweep flag would fake Fig. 7 runs.
                SEGRAM_CHECK(!args.seen("--bucket-bits"),
                             "--bucket-bits cannot be combined with a "
                             ".segram pack; pass it to `segram index`");
                SEGRAM_CHECK(!args.seen("--discard-top"),
                             "--discard-top cannot be combined with a "
                             ".segram pack; pass it to `segram index`");
                options.packPath = pos[1];
                reads_pos = 2;
            } else if (io::isGfaFile(pos[1])) {
                options.gfaPath = pos[1];
                reads_pos = 2;
            } else {
                SEGRAM_CHECK(pos.size() >= 4,
                             "map needs <ref.fa> <vars.vcf> <reads> "
                             "(or <graph.gfa>/<pack.segram> <reads>)");
                options.fastaPath = pos[1];
                options.vcfPath = pos[2];
                reads_pos = 3;
            }
            // Only a mapped pack has droppable shards; the budget on
            // in-memory tables would silently do nothing.
            SEGRAM_CHECK(!args.seen("--mem-budget") ||
                             !options.packPath.empty(),
                         "--mem-budget requires a .segram pack input "
                         "(in-memory tables cannot be dropped)");
            options.readsPath = pos[reads_pos];
            if (pos.size() >= reads_pos + 2) {
                options.errorRate = parseDoubleArg(
                    "error_rate", pos[reads_pos + 1]);
                SEGRAM_CHECK(options.errorRate >= 0.0 &&
                                 options.errorRate < 1.0,
                             "error_rate must be in [0, 1)");
            }
            options.engine = args.engine;
            options.threads = args.threads;
            options.batchSize = args.batchSize;
            options.bucketBits = args.bucketBits;
            options.discardTop = args.discardTop;
            options.printStats = args.stats;
            options.pathCoords = args.pathCoords;
            options.maxRegions =
                static_cast<uint32_t>(args.maxRegions);
            options.earlyExit = args.earlyExit;
            options.chainFilter = args.chainFilter;
            options.maxChains = args.maxChains;
            options.hopLimit = args.hopLimit;
            options.maxOcc = static_cast<uint32_t>(args.maxOcc);
            options.memBudgetMb = args.memBudgetMb;
            return cmdMap(options);
        }
        if (pos.size() >= 6 && pos[0] == "simulate") {
            args.requireFlagsApplyTo("simulate",
                                     {"--chromosomes",
                                      "--repeat-fraction",
                                      "--tandem-fraction"});
            const long long genome_len =
                parseIntFlag("genome_len", pos[2].c_str());
            const long long num_reads =
                parseIntFlag("num_reads", pos[3].c_str());
            const long long read_len =
                parseIntFlag("read_len", pos[4].c_str());
            SEGRAM_CHECK(genome_len >= 1, "genome_len must be >= 1");
            // Upper bounds guard the uint32_t narrowing below — a
            // silently truncated count would be the old atoi bug in
            // new clothes.
            SEGRAM_CHECK(num_reads >= 1 && num_reads <= 0xFFFFFFFFll,
                         "num_reads must be in [1, 2^32)");
            SEGRAM_CHECK(read_len >= 1 && read_len <= 0xFFFFFFFFll,
                         "read_len must be in [1, 2^32)");
            const double error_rate =
                parseDoubleArg("error_rate", pos[5]);
            SEGRAM_CHECK(error_rate >= 0.0 && error_rate < 1.0,
                         "error_rate must be in [0, 1)");
            SEGRAM_CHECK(
                static_cast<uint64_t>(genome_len) >= args.chromosomes,
                "genome_len must cover one base per chromosome");
            return cmdSimulate(
                pos[1], static_cast<uint64_t>(genome_len),
                static_cast<uint32_t>(num_reads),
                static_cast<uint32_t>(read_len), error_rate,
                args.chromosomes, args.repeatFraction,
                args.tandemFraction);
        }
        if (pos.size() >= 3 && pos[0] == "eval") {
            args.requireFlagsApplyTo("eval", {"--threshold"});
            const std::vector<std::string> pafs(pos.begin() + 2,
                                                pos.end());
            return cmdEval(pos[1], pafs, args.threshold);
        }
        if (pos.size() >= 2 && pos[0] == "serve") {
            args.requireFlagsApplyTo(
                "serve", {"--socket", "--listen", "--threads",
                          "--queue", "--batch-limit", "--mem-budget",
                          "--error-rate"});
            SEGRAM_CHECK(!args.socketPath.empty() ||
                             !args.listenSpec.empty(),
                         "serve needs --socket PATH and/or "
                         "--listen HOST:PORT");
            ServeOptions options;
            options.socketPath = args.socketPath;
            options.listenSpec = args.listenSpec;
            options.threads = args.threads;
            options.queueCapacity =
                static_cast<size_t>(args.queueCapacity);
            options.batchLimit = args.batchLimit;
            options.memBudgetMb = args.memBudgetMb;
            options.errorRate = args.errorRate;
            for (size_t i = 1; i < pos.size(); ++i) {
                // name=pack.segram — the name is the MAP routing key,
                // so it must be explicit, not derived from the path.
                const size_t eq = pos[i].find('=');
                SEGRAM_CHECK(eq != std::string::npos && eq > 0 &&
                                 eq + 1 < pos[i].size(),
                             "serve pack arguments take the form "
                             "<name>=<pack.segram>, got '" + pos[i] +
                                 "'");
                options.packs.emplace_back(pos[i].substr(0, eq),
                                           pos[i].substr(eq + 1));
            }
            return cmdServe(options);
        }
        if (pos.size() >= 2 && pos[0] == "client") {
            args.requireFlagsApplyTo(
                "client", {"--socket", "--connect", "--batch"});
            SEGRAM_CHECK(args.socketPath.empty() !=
                             args.connectSpec.empty(),
                         "client needs exactly one of --socket PATH "
                         "or --connect HOST:PORT");
            ClientOptions options;
            options.socketPath = args.socketPath;
            options.connectSpec = args.connectSpec;
            options.batchSize = args.batchSize;
            options.command.assign(pos.begin() + 1, pos.end());
            return cmdClient(options);
        }
        usage();
        return 2;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "[segram] error: %s\n", error.what());
        return 1;
    }
}
