/**
 * @file
 * `segram` — the command-line front end of the library, covering the
 * whole paper pipeline on real files:
 *
 *   segram construct <ref.fa> <vars.vcf> <out.gfa>
 *       Pre-processing step 0.1: build the topologically sorted genome
 *       graph (one per FASTA record / chromosome) and write it as GFA.
 *
 *   segram map <ref.fa> <vars.vcf> <reads.fa> [E]
 *       Full pipeline: construct + index each chromosome, then map
 *       every read (trying both strands) and print PAF to stdout.
 *       E is the expected per-base error rate (default 0.10).
 *
 *   segram simulate <out_prefix> <genome_len> <num_reads> <read_len> <err>
 *       Emit a synthetic dataset (<prefix>.fa, <prefix>.vcf,
 *       <prefix>.reads.fa) for trying the two commands above.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/segram.h"
#include "src/graph/graph_builder.h"
#include "src/graph/variants.h"
#include "src/io/fasta.h"
#include "src/io/fastq.h"
#include "src/io/gfa.h"
#include "src/io/paf.h"
#include "src/io/vcf.h"
#include "src/sim/dataset.h"

namespace
{

using namespace segram;

/** Per-chromosome pre-processed state. */
struct Chromosome
{
    std::string name;
    graph::GenomeGraph graph;
    index::MinimizerIndex index;
};

std::vector<Chromosome>
preprocess(const std::string &fasta_path, const std::string &vcf_path,
           bool build_index)
{
    const auto records = io::readFastaFile(fasta_path);
    const auto vcf = io::readVcfFile(vcf_path);
    std::vector<Chromosome> chromosomes;
    for (const auto &record : records) {
        uint64_t dropped = 0;
        const auto variants = graph::canonicalizeSet(
            vcf, record.name, record.seq.size(), &dropped);
        Chromosome chromosome;
        chromosome.name = record.name;
        chromosome.graph = graph::buildGraph(record.seq, variants);
        if (build_index) {
            index::IndexConfig config;
            config.bucketBits = 16;
            chromosome.index =
                index::MinimizerIndex::build(chromosome.graph, config);
        }
        std::fprintf(stderr,
                     "[segram] %s: %zu bp, %zu variants (%llu dropped), "
                     "%zu nodes, %zu edges\n",
                     record.name.c_str(), record.seq.size(),
                     variants.size(),
                     static_cast<unsigned long long>(dropped),
                     chromosome.graph.numNodes(),
                     chromosome.graph.numEdges());
        chromosomes.push_back(std::move(chromosome));
    }
    return chromosomes;
}

int
cmdConstruct(const std::string &fasta_path, const std::string &vcf_path,
             const std::string &gfa_path)
{
    const auto chromosomes = preprocess(fasta_path, vcf_path, false);
    // Multiple chromosomes are written as disjoint components with
    // name-prefixed segments.
    io::GfaDocument doc;
    for (const auto &chromosome : chromosomes) {
        const auto part = chromosome.graph.toGfa();
        for (const auto &segment : part.segments)
            doc.segments.push_back(
                {chromosome.name + "." + segment.name, segment.seq});
        for (const auto &link : part.links)
            doc.links.push_back({chromosome.name + "." + link.from,
                                 chromosome.name + "." + link.to});
    }
    io::writeGfaFile(gfa_path, doc);
    std::fprintf(stderr, "[segram] wrote %zu segments, %zu links to %s\n",
                 doc.segments.size(), doc.links.size(),
                 gfa_path.c_str());
    return 0;
}

int
cmdMap(const std::string &fasta_path, const std::string &vcf_path,
       const std::string &reads_path, double error_rate)
{
    const auto chromosomes = preprocess(fasta_path, vcf_path, true);

    core::SegramConfig config;
    config.minseed.errorRate = error_rate;
    config.bitalign.windowEditCap =
        std::max(32, static_cast<int>(config.bitalign.windowLen *
                                      error_rate * 3));
    config.earlyExitFraction = 1.5;
    config.tryReverseComplement = true;
    std::vector<core::ChromosomeRef> refs;
    for (const auto &chromosome : chromosomes)
        refs.push_back({chromosome.name, &chromosome.graph,
                        &chromosome.index});
    const core::MultiGraphMapper mapper(refs, config);

    const auto reads = io::readReadsFile(reads_path);
    core::PipelineStats stats;
    size_t mapped = 0;
    for (const auto &read : reads) {
        const auto result = mapper.mapRead(read.seq, &stats);
        if (!result.mapped)
            continue;
        ++mapped;
        uint64_t target_len = 0;
        for (const auto &chromosome : chromosomes) {
            if (chromosome.name == result.chromosome)
                target_len = chromosome.graph.totalSeqLen();
        }
        io::writePaf(std::cout,
                     io::makePafRecord(
                         read.name, read.seq.size(),
                         result.reverseComplemented ? '-' : '+',
                         result.chromosome, target_len,
                         result.linearStart, result.cigar));
    }
    std::fprintf(stderr,
                 "[segram] mapped %zu/%zu reads (%llu regions aligned, "
                 "%llu seeds fetched)\n",
                 mapped, reads.size(),
                 static_cast<unsigned long long>(stats.regionsAligned),
                 static_cast<unsigned long long>(
                     stats.seeding.seedsFetched));
    return mapped == 0 && !reads.empty() ? 1 : 0;
}

int
cmdSimulate(const std::string &prefix, uint64_t genome_len,
            uint32_t num_reads, uint32_t read_len, double error_rate)
{
    sim::DatasetConfig config;
    config.genome.length = genome_len;
    config.index.bucketBits = 14;
    config.seed = 1234;
    const auto dataset = sim::makeDataset(config);

    io::writeFastaFile(prefix + ".fa", {{"chr1", dataset.reference}});
    std::vector<io::VcfRecord> vcf;
    for (const auto &variant : dataset.variants) {
        if (variant.pos == 0)
            continue; // indels at position 0 cannot be VCF-padded
        vcf.push_back(
            graph::toVcfRecord(variant, "chr1", dataset.reference));
    }
    io::writeVcfFile(prefix + ".vcf", vcf);

    Rng rng(config.seed + 1);
    sim::ReadSimConfig read_config{
        read_len, num_reads,
        read_len >= 1000 ? sim::ErrorProfile::pacbio(error_rate)
                         : sim::ErrorProfile::illumina(error_rate)};
    const auto reads =
        sim::simulateReads(dataset.donor, read_config, rng);
    std::vector<io::FastaRecord> read_records;
    for (size_t i = 0; i < reads.size(); ++i) {
        read_records.push_back(
            {"read" + std::to_string(i) + "_truth" +
                 std::to_string(reads[i].truthLinearStart),
             reads[i].seq});
    }
    io::writeFastaFile(prefix + ".reads.fa", read_records);
    std::fprintf(stderr,
                 "[segram] wrote %s.fa (%llu bp), %s.vcf (%zu records), "
                 "%s.reads.fa (%u reads)\n",
                 prefix.c_str(),
                 static_cast<unsigned long long>(genome_len),
                 prefix.c_str(), vcf.size(), prefix.c_str(), num_reads);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  segram construct <ref.fa> <vars.vcf> <out.gfa>\n"
        "  segram map <ref.fa> <vars.vcf> <reads.fa> [error_rate]\n"
        "  segram simulate <prefix> <genome_len> <num_reads> "
        "<read_len> <error_rate>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 5 && std::strcmp(argv[1], "construct") == 0)
            return cmdConstruct(argv[2], argv[3], argv[4]);
        if (argc >= 5 && std::strcmp(argv[1], "map") == 0) {
            const double error_rate =
                argc >= 6 ? std::atof(argv[5]) : 0.10;
            return cmdMap(argv[2], argv[3], argv[4], error_rate);
        }
        if (argc >= 7 && std::strcmp(argv[1], "simulate") == 0) {
            return cmdSimulate(
                argv[2], std::strtoull(argv[3], nullptr, 10),
                static_cast<uint32_t>(std::atoi(argv[4])),
                static_cast<uint32_t>(std::atoi(argv[5])),
                std::atof(argv[6]));
        }
        usage();
        return 2;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "[segram] error: %s\n", error.what());
        return 1;
    }
}
