#!/usr/bin/env python3
"""Repo-invariant lint for segram.

Textual (token-level) checks for invariants the compiler cannot
enforce and that code review keeps re-litigating. Comments and string
literals are stripped before matching, so prose about a rule never
trips it.

Rules
-----
hot-path-alloc   No explicit heap allocation (`new`, make_unique/
                 make_shared, malloc/calloc/realloc) in hot-path
                 files: src/align/, src/seed/, src/core/segram.cc.
                 Per-read temporaries there must come from reusable
                 workspaces (MapWorkspace) — an allocation per window
                 or per seed is a throughput bug, not a style issue.
no-endl          No `std::endl` in hot-path files: it flushes the
                 stream on every use; hot paths buffer and write
                 '\n'. (The PafWriter exists precisely for this.)
bare-assert      No bare `assert(` anywhere under src/. Use
                 SEGRAM_CHECK (user input, always on, throws) or
                 SEGRAM_DCHECK (internal invariant, debug-only,
                 aborts with a message). `static_assert` is fine.
errno-capture    In src/serve/ and src/io/, `errno` may only be
                 reset (`errno = 0`), compared (`errno == EINTR`),
                 or captured (`const int saved_errno = errno;`).
                 Passing `errno` directly as a function argument is
                 rejected: evaluation order of the other arguments
                 is unspecified, and building a message string can
                 clobber errno (malloc) before it is read.

Suppression: append `// segram-lint: allow(<rule>)` to the offending
line (or put it on the line above).

Usage
-----
  segram_lint.py [--root DIR] [--compile-commands FILE]
  segram_lint.py --self-test

With --compile-commands, translation units are taken from the
compile database (filtered to the repo's src/), so the lint sees
exactly what the build builds; headers under src/ are always added
by glob since they never appear in a compile database. Without it,
everything under src/ is linted. Exit status: 0 clean, 1 violations,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

HOT_PATH_PREFIXES = ("src/align/", "src/seed/")
HOT_PATH_FILES = ("src/core/segram.cc",)
ERRNO_SCOPE_PREFIXES = ("src/serve/", "src/io/")

ALLOW_RE = re.compile(r"//\s*segram-lint:\s*allow\(([a-z-]+)\)")

RULE_ALLOC = "hot-path-alloc"
RULE_ENDL = "no-endl"
RULE_ASSERT = "bare-assert"
RULE_ERRNO = "errno-capture"
ALL_RULES = (RULE_ALLOC, RULE_ENDL, RULE_ASSERT, RULE_ERRNO)

ALLOC_RE = re.compile(
    r"(?<![A-Za-z0-9_])(?:"
    r"new\s+[A-Za-z_:(<]"          # new T / new (nothrow) T
    r"|new\s*\["                    # new[]
    r"|(?:std::)?make_unique\s*<"
    r"|(?:std::)?make_shared\s*<"
    r"|malloc\s*\("
    r"|calloc\s*\("
    r"|realloc\s*\("
    r")"
)
ENDL_RE = re.compile(r"std\s*::\s*endl")
ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
ERRNO_RE = re.compile(r"(?<![A-Za-z0-9_])errno(?![A-Za-z0-9_])")
ERRNO_OK_RES = (
    re.compile(r"(?<![A-Za-z0-9_])errno\s*=\s*0\b"),   # reset
    re.compile(r"=\s*errno\s*;"),                       # capture
    re.compile(r"(?<![A-Za-z0-9_])errno\s*(==|!=)"),    # compare
    re.compile(r"(==|!=)\s*errno(?![A-Za-z0-9_])"),     # compare
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i : j + 2]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 1))
            if j < n and text[j] == quote:
                out.append(quote)
                j += 1
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_lines(raw_lines: list[str]) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the rules suppressed on them (a
    marker also covers the following line, so it can sit alone)."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for match in ALLOW_RE.finditer(line):
            rule = match.group(1)
            allows.setdefault(lineno, set()).add(rule)
            allows.setdefault(lineno + 1, set()).add(rule)
    return allows


def is_hot_path(rel: str) -> bool:
    return rel.startswith(HOT_PATH_PREFIXES) or rel in HOT_PATH_FILES


def in_errno_scope(rel: str) -> bool:
    return rel.startswith(ERRNO_SCOPE_PREFIXES)


def lint_text(rel: str, text: str, *, hot_path: bool,
              errno_scope: bool) -> list[tuple[str, int, str, str]]:
    """Returns (path, line, rule, message) tuples."""
    raw_lines = text.splitlines()
    allows = allowed_lines(raw_lines)
    stripped = strip_comments_and_strings(text).splitlines()
    findings = []

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in allows.get(lineno, ()):  # suppressed
            return
        findings.append((rel, lineno, rule, message))

    for lineno, line in enumerate(stripped, start=1):
        if hot_path:
            if ALLOC_RE.search(line):
                report(lineno, RULE_ALLOC,
                       "heap allocation in a hot-path file; use a "
                       "workspace (see MapWorkspace)")
            if ENDL_RE.search(line):
                report(lineno, RULE_ENDL,
                       "std::endl flushes per use; write '\\n' and let "
                       "the writer batch flushes")
        if ASSERT_RE.search(line):
            report(lineno, RULE_ASSERT,
                   "bare assert(); use SEGRAM_CHECK (input, throws) or "
                   "SEGRAM_DCHECK (invariant, debug-only)")
        if errno_scope and ERRNO_RE.search(line):
            probe = line
            for ok in ERRNO_OK_RES:
                probe = ok.sub("", probe)
            if ERRNO_RE.search(probe):
                report(lineno, RULE_ERRNO,
                       "errno used outside reset/compare/capture; save "
                       "it first: const int saved_errno = errno;")
    return findings


def lint_file(root: Path, path: Path) -> list[tuple[str, int, str, str]]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return [(rel, 0, "io", f"unreadable: {error}")]
    return lint_text(rel, text, hot_path=is_hot_path(rel),
                     errno_scope=in_errno_scope(rel))


def collect_files(root: Path, compile_commands: Path | None) -> list[Path]:
    src = root / "src"
    files = set(src.rglob("*.h"))
    if compile_commands is not None:
        with open(compile_commands, encoding="utf-8") as handle:
            database = json.load(handle)
        for entry in database:
            path = Path(entry["file"])
            if not path.is_absolute():
                path = Path(entry["directory"]) / path
            path = path.resolve()
            if path.is_relative_to(src) and path.exists():
                files.add(path)
    else:
        files.update(src.rglob("*.cc"))
    return sorted(files)


def self_test() -> int:
    """Lints the checked-in fixtures: the violating fixtures must fire
    exactly the expected rules, the clean fixture must not fire at
    all. Proves the lint can actually fail, so a future regex typo
    cannot silently turn it into a no-op."""
    fixtures = Path(__file__).resolve().parent / "tests"
    failures = []

    def expect(name: str, *, hot_path: bool, errno_scope: bool,
               want: dict[str, int]) -> None:
        path = fixtures / name
        text = path.read_text(encoding="utf-8")
        findings = lint_text(name, text, hot_path=hot_path,
                             errno_scope=errno_scope)
        got: dict[str, int] = {}
        for _, _, rule, _ in findings:
            got[rule] = got.get(rule, 0) + 1
        if got != want:
            failures.append(f"{name}: expected {want}, got {got}")

    expect("hot_path_violations.cc", hot_path=True, errno_scope=False,
           want={RULE_ALLOC: 4, RULE_ENDL: 1, RULE_ASSERT: 1})
    expect("errno_violations.cc", hot_path=False, errno_scope=True,
           want={RULE_ERRNO: 2})
    expect("clean.cc", hot_path=True, errno_scope=True, want={})

    if failures:
        for failure in failures:
            print(f"self-test FAIL: {failure}", file=sys.stderr)
        return 1
    print("segram_lint self-test: all fixtures behaved as expected")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: two levels above "
                             "this script)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json to take the "
                             "translation-unit list from")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the checked-in fixtures instead of "
                             "the tree")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or Path(__file__).resolve().parents[2]
    root = root.resolve()
    if not (root / "src").is_dir():
        print(f"error: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in collect_files(root, args.compile_commands):
        findings.extend(lint_file(root, path))

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"segram_lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print("segram_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
