// Deliberately-violating fixture for segram_lint --self-test: every
// line below marked VIOLATION must fire, proving the lint can fail.
// This file is never compiled.
#include <cassert>
#include <iostream>
#include <memory>

void
hot_path_sins(std::ostream &out, int n)
{
    int *raw = new int[n];                          // VIOLATION hot-path-alloc
    auto owned = std::make_unique<int>(n);          // VIOLATION hot-path-alloc
    auto shared = std::make_shared<int>(n);         // VIOLATION hot-path-alloc
    void *c_style = malloc(static_cast<size_t>(n)); // VIOLATION hot-path-alloc
    out << *raw << *owned << *shared << std::endl;  // VIOLATION no-endl
    assert(c_style != nullptr);                     // VIOLATION bare-assert
    // "new FooBar in a string" and a comment saying new Thing() must
    // NOT fire: both are stripped before matching.
    const char *prose = "allocates via new Widget()";
    (void)prose;
}
