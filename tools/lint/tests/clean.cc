// Clean fixture for segram_lint --self-test: linted with BOTH the
// hot-path and errno scopes forced on, and must produce zero
// findings — every pattern here is the sanctioned spelling of
// something the violating fixtures get wrong. Never compiled.
#include <cerrno>
#include <cstdint>

static_assert(sizeof(std::uint64_t) == 8, "static_assert is fine");

int
sanctioned_patterns(int fd)
{
    // Reset, compare, and capture are the three allowed errno uses.
    errno = 0;
    if (fd < 0) {
        if (errno == EINTR)
            return -1;
        const int saved_errno = errno;
        return saved_errno;
    }
    SEGRAM_DCHECK(fd >= 0, "the sanctioned assert spelling");
    int stack_buffer[16] = {0}; // stack, not heap: fine in hot paths
    // Prose about new Widget() allocations and std::endl is stripped.
    const char *prose = "new Widget() and std::endl and assert(x)";
    (void)prose;
    // The escape hatch: a justified allocation can be waved through.
    int *pinned = new int[16]; // segram-lint: allow(hot-path-alloc)
    delete[] pinned;
    return stack_buffer[0];
}
