// Deliberately-violating fixture for segram_lint --self-test: the
// errno-capture rule must reject errno used as a function argument.
// This file is never compiled.
#include <cerrno>
#include <stdexcept>
#include <string>

void
errno_sins(int fd, const std::string &path)
{
    if (fd < 0)
        throw std::runtime_error(path + std::to_string(errno)); // VIOLATION
    report_failure("open failed", errno);                       // VIOLATION
}
